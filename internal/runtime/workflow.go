// Package runtime is the task-based workflow engine at the center of the
// reproduction: the Go analog of PyCOMPSs (§3). Applications submit tasks
// with data-direction annotations; the runtime builds the execution DAG
// from data dependencies, schedules dependency-free tasks onto cluster
// resources with a pluggable policy, and executes each task through the
// paper's processing stages (Figure 4): deserialization, the user code
// (serial fraction, CPU-GPU communication, parallel fraction) and
// serialization.
//
// Two backends share the same workflow definition:
//
//   - SimBackend executes the lifecycle on the deterministic DES over a
//     simulated cluster, producing per-stage virtual timings at paper scale
//     (8-100 GB datasets, 128 cores, 32 GPUs). This is what every
//     experiment uses.
//   - LocalBackend executes the real kernels on goroutine worker pools with
//     materialized blocks, validating that the workflows compute correct
//     results (examples and tests).
package runtime

import (
	"fmt"
	"sort"
	"sync"

	"wfsim/internal/costmodel"
	"wfsim/internal/dag"
	"wfsim/internal/dataset"
)

// ExecFunc is the real computation of a task, used by the local backend.
// It reads and writes materialized blocks through the Store.
type ExecFunc func(s *Store) error

// TaskSpec carries everything the backends need to run one task: the
// analytic cost profile (sim backend) and the real kernel (local backend,
// optional for sim-only workflows).
type TaskSpec struct {
	Profile costmodel.Profile
	Exec    ExecFunc
}

// Workflow is an application expressed as tasks over named data. It wraps
// the dependency DAG with per-datum sizes (for storage I/O and locality
// decisions) and, optionally, materialized input blocks for real execution.
//
// Applications speak datum names (strings); the workflow interns every
// name into the graph's dense int32 datum ID at declaration time and keeps
// all per-datum state in plain slices indexed by that ID, so the simulated
// task hot path never touches a string-keyed map.
type Workflow struct {
	Name  string
	Graph *dag.Graph

	// sizes holds datum bytes indexed by datum ID, used for
	// (de)serialization volumes and locality weights; sized declares
	// which entries have actually been set (a datum may legitimately
	// have size 0).
	sizes []float64
	sized []bool

	// specs holds each task's spec indexed by task ID — stored out of
	// band instead of boxed into dag.Task.Payload, which would cost one
	// heap allocation per task.
	specs []TaskSpec

	// initial holds materialized input blocks for the local backend.
	initial map[string]*dataset.Block
}

// NewWorkflow returns an empty workflow.
func NewWorkflow(name string) *Workflow {
	return &Workflow{
		Name:    name,
		Graph:   dag.New(),
		initial: make(map[string]*dataset.Block),
	}
}

// Hint pre-sizes the workflow for a build of about tasks tasks, data
// distinct datums and params total task parameters (see dag.Graph.Hint).
// Estimates only need to be close; construction grows past them correctly.
func (w *Workflow) Hint(tasks, data, params int) {
	w.Graph.Hint(tasks, data, params)
	if tasks > cap(w.specs) {
		s := make([]TaskSpec, len(w.specs), tasks)
		copy(s, w.specs)
		w.specs = s
	}
	if data > cap(w.sizes) {
		sz := make([]float64, len(w.sizes), data)
		copy(sz, w.sizes)
		w.sizes = sz
		sd := make([]bool, len(w.sized), data)
		copy(sd, w.sized)
		w.sized = sd
	}
}

// datumID interns key and grows the size tables to cover it.
func (w *Workflow) datumID(key string) int32 {
	id := w.Graph.DatumID(key)
	for int(id) >= len(w.sizes) {
		w.sizes = append(w.sizes, 0)
		w.sized = append(w.sized, false)
	}
	return id
}

// SetSize declares the serialized size of a datum in bytes. Tasks reading
// the datum deserialize this volume; tasks writing it serialize it.
func (w *Workflow) SetSize(key string, bytes float64) {
	id := w.datumID(key)
	w.sizes[id] = bytes
	w.sized[id] = true
}

// Size returns the declared size of a datum (0 if unknown).
func (w *Workflow) Size(key string) float64 {
	id, ok := w.Graph.Data().Lookup(key)
	if !ok || int(id) >= len(w.sizes) {
		return 0
	}
	return w.sizes[id]
}

// SizeByID returns the declared size of a datum by its interned ID — the
// allocation-free lookup the simulation hot path uses.
func (w *Workflow) SizeByID(id int32) float64 {
	if int(id) >= len(w.sizes) {
		return 0
	}
	return w.sizes[id]
}

// SetInput attaches a materialized block as workflow input data for the
// local backend, and records its size for the sim backend.
func (w *Workflow) SetInput(key string, b *dataset.Block) {
	w.initial[key] = b
	w.SetSize(key, float64(b.Bytes()))
}

// AddTask submits a task: the spec plus its data parameters. Dependencies
// are inferred from parameter directions exactly as in PyCOMPSs.
func (w *Workflow) AddTask(name string, spec TaskSpec, params ...dag.Param) *dag.Task {
	t := w.Graph.Add(name, nil, params...)
	for len(w.specs) < t.ID { // tolerate tasks added via Graph.Add directly
		w.specs = append(w.specs, TaskSpec{})
	}
	w.specs = append(w.specs, spec)
	// Size tables must cover every interned datum for SizeByID.
	for w.Graph.NumData() > len(w.sizes) {
		w.sizes = append(w.sizes, 0)
		w.sized = append(w.sized, false)
	}
	return t
}

// Spec returns the TaskSpec attached to a DAG task.
func (w *Workflow) Spec(t *dag.Task) TaskSpec {
	if t.ID < len(w.specs) {
		return w.specs[t.ID]
	}
	s, ok := t.Payload.(TaskSpec)
	if !ok {
		return TaskSpec{}
	}
	return s
}

// readBytes sums the serialized sizes of the task's read parameters.
func (w *Workflow) readBytes(t *dag.Task) float64 {
	var sum float64
	ids := t.DataIDs()
	for i, p := range t.Params {
		if p.Reads() {
			sum += w.SizeByID(ids[i])
		}
	}
	return sum
}

// writeBytes sums the serialized sizes of the task's written parameters.
func (w *Workflow) writeBytes(t *dag.Task) float64 {
	var sum float64
	ids := t.DataIDs()
	for i, p := range t.Params {
		if p.Writes() {
			sum += w.SizeByID(ids[i])
		}
	}
	return sum
}

// InputIDs returns, in first-use order, the datum ID of every datum that
// is read before any task writes it — the workflow's external input data,
// which the runtime pre-places in storage before execution.
func (w *Workflow) InputIDs() []int32 {
	nd := w.Graph.NumData()
	written := make([]bool, nd)
	seen := make([]bool, nd)
	var out []int32
	for _, t := range w.Graph.Tasks() {
		ids := t.DataIDs()
		for i, p := range t.Params {
			if id := ids[i]; p.Reads() && !written[id] && !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
		for i, p := range t.Params {
			if p.Writes() {
				written[ids[i]] = true
			}
		}
	}
	return out
}

// InputKeys returns the workflow's external input data as datum names, in
// the same first-use order as InputIDs.
func (w *Workflow) InputKeys() []string {
	ids := w.InputIDs()
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = w.Graph.Data().Name(id)
	}
	return out
}

// Validate checks the workflow is runnable: valid DAG, sizes declared for
// every datum.
func (w *Workflow) Validate() error {
	if err := w.Graph.Validate(); err != nil {
		return fmt.Errorf("workflow %s: %w", w.Name, err)
	}
	missing := make([]bool, w.Graph.NumData())
	nMissing := 0
	for _, t := range w.Graph.Tasks() {
		for _, id := range t.DataIDs() {
			if (int(id) >= len(w.sized) || !w.sized[id]) && !missing[id] {
				missing[id] = true
				nMissing++
			}
		}
	}
	if nMissing > 0 {
		keys := make([]string, 0, nMissing)
		for id, m := range missing {
			if m {
				keys = append(keys, w.Graph.Data().Name(int32(id)))
			}
		}
		sort.Strings(keys)
		return fmt.Errorf("workflow %s: %d datum(s) without declared size, e.g. %q",
			w.Name, len(keys), keys[0])
	}
	return nil
}

// Store is the local backend's in-memory data space: materialized blocks
// keyed by datum name. It is safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	data map[string]*dataset.Block
}

// NewStore creates an empty store.
func NewStore() *Store { return &Store{data: make(map[string]*dataset.Block)} }

// Get returns the block stored under key, or nil.
func (s *Store) Get(key string) *dataset.Block {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data[key]
}

// MustGet returns the block stored under key, panicking if absent — for
// kernels whose inputs are guaranteed by DAG ordering.
func (s *Store) MustGet(key string) *dataset.Block {
	b := s.Get(key)
	if b == nil {
		panic(fmt.Sprintf("runtime: datum %q not materialized", key))
	}
	return b
}

// Put stores a block under key.
func (s *Store) Put(key string, b *dataset.Block) {
	s.mu.Lock()
	s.data[key] = b
	s.mu.Unlock()
}

// Len returns the number of stored blocks.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}
