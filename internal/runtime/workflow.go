// Package runtime is the task-based workflow engine at the center of the
// reproduction: the Go analog of PyCOMPSs (§3). Applications submit tasks
// with data-direction annotations; the runtime builds the execution DAG
// from data dependencies, schedules dependency-free tasks onto cluster
// resources with a pluggable policy, and executes each task through the
// paper's processing stages (Figure 4): deserialization, the user code
// (serial fraction, CPU-GPU communication, parallel fraction) and
// serialization.
//
// Two backends share the same workflow definition:
//
//   - SimBackend executes the lifecycle on the deterministic DES over a
//     simulated cluster, producing per-stage virtual timings at paper scale
//     (8-100 GB datasets, 128 cores, 32 GPUs). This is what every
//     experiment uses.
//   - LocalBackend executes the real kernels on goroutine worker pools with
//     materialized blocks, validating that the workflows compute correct
//     results (examples and tests).
package runtime

import (
	"fmt"
	"sort"
	"sync"

	"wfsim/internal/costmodel"
	"wfsim/internal/dag"
	"wfsim/internal/dataset"
)

// ExecFunc is the real computation of a task, used by the local backend.
// It reads and writes materialized blocks through the Store.
type ExecFunc func(s *Store) error

// TaskSpec carries everything the backends need to run one task: the
// analytic cost profile (sim backend) and the real kernel (local backend,
// optional for sim-only workflows).
type TaskSpec struct {
	Profile costmodel.Profile
	Exec    ExecFunc
}

// Workflow is an application expressed as tasks over named data. It wraps
// the dependency DAG with per-datum sizes (for storage I/O and locality
// decisions) and, optionally, materialized input blocks for real execution.
type Workflow struct {
	Name  string
	Graph *dag.Graph

	// sizes maps datum key -> bytes, used for (de)serialization volumes
	// and locality weights.
	sizes map[string]float64

	// initial holds materialized input blocks for the local backend.
	initial map[string]*dataset.Block
}

// NewWorkflow returns an empty workflow.
func NewWorkflow(name string) *Workflow {
	return &Workflow{
		Name:    name,
		Graph:   dag.New(),
		sizes:   make(map[string]float64),
		initial: make(map[string]*dataset.Block),
	}
}

// SetSize declares the serialized size of a datum in bytes. Tasks reading
// the datum deserialize this volume; tasks writing it serialize it.
func (w *Workflow) SetSize(key string, bytes float64) { w.sizes[key] = bytes }

// Size returns the declared size of a datum (0 if unknown).
func (w *Workflow) Size(key string) float64 { return w.sizes[key] }

// SetInput attaches a materialized block as workflow input data for the
// local backend, and records its size for the sim backend.
func (w *Workflow) SetInput(key string, b *dataset.Block) {
	w.initial[key] = b
	w.sizes[key] = float64(b.Bytes())
}

// AddTask submits a task: the spec plus its data parameters. Dependencies
// are inferred from parameter directions exactly as in PyCOMPSs.
func (w *Workflow) AddTask(name string, spec TaskSpec, params ...dag.Param) *dag.Task {
	return w.Graph.Add(name, spec, params...)
}

// Spec returns the TaskSpec attached to a DAG task.
func (w *Workflow) Spec(t *dag.Task) TaskSpec {
	s, ok := t.Payload.(TaskSpec)
	if !ok {
		return TaskSpec{}
	}
	return s
}

// readBytes sums the serialized sizes of the task's read parameters.
func (w *Workflow) readBytes(t *dag.Task) float64 {
	var sum float64
	for _, p := range t.Params {
		if p.Reads() {
			sum += w.sizes[p.Data]
		}
	}
	return sum
}

// writeBytes sums the serialized sizes of the task's written parameters.
func (w *Workflow) writeBytes(t *dag.Task) float64 {
	var sum float64
	for _, p := range t.Params {
		if p.Writes() {
			sum += w.sizes[p.Data]
		}
	}
	return sum
}

// InputKeys returns, in first-use order, every datum that is read before
// any task writes it — the workflow's external input data, which the
// runtime pre-places in storage before execution.
func (w *Workflow) InputKeys() []string {
	written := make(map[string]bool)
	seen := make(map[string]bool)
	var out []string
	for _, t := range w.Graph.Tasks() {
		for _, p := range t.Params {
			if p.Reads() && !written[p.Data] && !seen[p.Data] {
				seen[p.Data] = true
				out = append(out, p.Data)
			}
		}
		for _, p := range t.Params {
			if p.Writes() {
				written[p.Data] = true
			}
		}
	}
	return out
}

// Validate checks the workflow is runnable: valid DAG, sizes declared for
// every datum.
func (w *Workflow) Validate() error {
	if err := w.Graph.Validate(); err != nil {
		return fmt.Errorf("workflow %s: %w", w.Name, err)
	}
	missing := map[string]bool{}
	for _, t := range w.Graph.Tasks() {
		for _, p := range t.Params {
			if _, ok := w.sizes[p.Data]; !ok {
				missing[p.Data] = true
			}
		}
	}
	if len(missing) > 0 {
		keys := make([]string, 0, len(missing))
		for k := range missing {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return fmt.Errorf("workflow %s: %d datum(s) without declared size, e.g. %q",
			w.Name, len(keys), keys[0])
	}
	return nil
}

// Store is the local backend's in-memory data space: materialized blocks
// keyed by datum name. It is safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	data map[string]*dataset.Block
}

// NewStore creates an empty store.
func NewStore() *Store { return &Store{data: make(map[string]*dataset.Block)} }

// Get returns the block stored under key, or nil.
func (s *Store) Get(key string) *dataset.Block {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data[key]
}

// MustGet returns the block stored under key, panicking if absent — for
// kernels whose inputs are guaranteed by DAG ordering.
func (s *Store) MustGet(key string) *dataset.Block {
	b := s.Get(key)
	if b == nil {
		panic(fmt.Sprintf("runtime: datum %q not materialized", key))
	}
	return b
}

// Put stores a block under key.
func (s *Store) Put(key string, b *dataset.Block) {
	s.mu.Lock()
	s.data[key] = b
	s.mu.Unlock()
}

// Len returns the number of stored blocks.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}
