// Property test: every generated workflow completes under seeded failure
// schedules, on both storage architectures. Lives in an external test
// package because workload imports runtime.
package runtime_test

import (
	"testing"

	"wfsim/internal/faults"
	"wfsim/internal/runtime"
	"wfsim/internal/sched"
	"wfsim/internal/storage"
	"wfsim/internal/workload"
)

func TestEveryWorkflowCompletesUnderFaults(t *testing.T) {
	policies := sched.Policies()
	for seed := uint64(1); seed <= 5; seed++ {
		cfg := workload.Default(seed)
		cfg.Tasks = 60
		wf, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, arch := range []storage.Architecture{storage.Shared, storage.Local} {
			base, err := runtime.RunSim(wf, runtime.SimConfig{Storage: arch})
			if err != nil {
				t.Fatalf("seed %d %v fault-free: %v", seed, arch, err)
			}
			fcfg := faults.Config{
				Seed:          seed * 31,
				NodeMTBF:      base.Makespan, // several crashes expected across 8 nodes
				NodeMTTR:      base.Makespan / 10,
				TaskFailProb:  0.05,
				MaxAttempts:   25,
				StragglerMTBF: base.Makespan * 2,
			}
			res, err := runtime.RunSim(wf, runtime.SimConfig{
				Storage: arch,
				Policy:  policies[seed%uint64(len(policies))],
				Faults:  fcfg,
			})
			if err != nil {
				t.Fatalf("seed %d %v faulty run failed: %v", seed, arch, err)
			}
			fs := res.Faults
			if fs.Retries > fs.TransientFailures {
				t.Errorf("seed %d %v: %d retries > %d transient failures",
					seed, arch, fs.Retries, fs.TransientFailures)
			}
			if arch == storage.Shared && (fs.BlocksLost != 0 || fs.LineageRecomputes != 0 || fs.InputRestages != 0) {
				t.Errorf("seed %d shared storage lost data: %+v", seed, fs)
			}
			if fs.WastedWork < 0 || fs.RecoveryWork < 0 {
				t.Errorf("seed %d %v: negative work accounting %+v", seed, arch, fs)
			}
			if res.Makespan <= 0 {
				t.Errorf("seed %d %v: non-positive makespan", seed, arch)
			}
		}
	}
}
