package runtime

import (
	"errors"
	"fmt"

	"wfsim/internal/metrics"
	"wfsim/internal/sched"
)

// TenantSpec configures one workload stream sharing the cluster.
type TenantSpec struct {
	// Weight is the tenant's share at the dispatch gate: grants are
	// apportioned proportionally to weights among backlogged tenants
	// (stride-style fair share). Non-positive means 1.
	Weight float64
	// Quota caps the tenant's concurrently admitted tasks (queued or
	// running); tasks over quota park at admission until a slot frees.
	// Zero or negative means unlimited.
	Quota int
}

// WorkflowResult is the per-workflow outcome a multi-tenant run hands
// back at session teardown, while the cluster keeps serving other
// sessions.
type WorkflowResult struct {
	// Tenant and Session identify the workflow instance: Tenant is the
	// index into the NewClusterSim tenant list, Session the global
	// submission index.
	Tenant  int
	Session int
	// Submitted and Finished are the workflow's arrival and completion
	// instants on the shared virtual clock; Finished − Submitted is its
	// response time.
	Submitted float64
	Finished  float64
	// Tasks is the workflow's task count.
	Tasks int
	// Collector holds the workflow's own stage records. The callback owns
	// it: the runtime drops its reference at teardown so a long arrival
	// stream does not accumulate O(total-tasks) record memory.
	Collector *metrics.Collector
}

// ClusterSim is one shared simulated cluster serving a stream of
// workflows from multiple tenants: the multi-tenant generalization of
// RunSim. Construct with NewClusterSim, register arrivals with Submit,
// then Run drives the virtual clock until every submitted workflow has
// finished.
type ClusterSim struct {
	run         *simRun
	tenants     []TenantSpec
	submissions int
	ran         bool
}

// NewClusterSim builds a shared cluster for the given tenants. The
// config is validated exactly like RunSim's; at least one tenant is
// required.
func NewClusterSim(cfg SimConfig, tenants []TenantSpec) (*ClusterSim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if len(tenants) == 0 {
		return nil, errors.New("runtime: NewClusterSim needs at least one tenant")
	}
	if cfg.NodeSpeed != nil && len(cfg.NodeSpeed) != cfg.Cluster.Nodes {
		return nil, fmt.Errorf("runtime: NodeSpeed has %d entries for %d nodes",
			len(cfg.NodeSpeed), cfg.Cluster.Nodes)
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}
	fcfg := cfg.Faults.WithDefaults()
	if fcfg.Enabled() {
		if err := fcfg.Validate(); err != nil {
			return nil, fmt.Errorf("runtime: %w", err)
		}
	}
	run, err := newSimRun(cfg, 0)
	if err != nil {
		return nil, err
	}
	m := &fairShare{
		weights:   make([]float64, len(tenants)),
		served:    make([]float64, len(tenants)),
		quota:     make([]int, len(tenants)),
		occupancy: make([]int, len(tenants)),
		overflow:  make([]sched.Queue, len(tenants)),
	}
	for i, t := range tenants {
		w := t.Weight
		if w <= 0 {
			w = 1
		}
		m.weights[i] = w
		if t.Quota > 0 {
			m.quota[i] = t.Quota
		}
	}
	run.multi = m
	return &ClusterSim{run: run, tenants: tenants}, nil
}

// Submit registers one workflow arrival for a tenant at virtual instant
// at (relative to the shared clock's origin). The workflow is validated
// and memory-preflighted immediately; its session is created when the
// clock reaches the arrival instant. onDone (optional) fires engine-side
// at the workflow's completion instant — while other sessions keep
// running — and receives the per-workflow result. Submissions must
// precede Run.
func (c *ClusterSim) Submit(tenant int, wf *Workflow, at float64, onDone func(WorkflowResult)) error {
	if c.ran {
		return errors.New("runtime: Submit after Run")
	}
	if tenant < 0 || tenant >= len(c.tenants) {
		return fmt.Errorf("runtime: tenant %d out of range [0, %d)", tenant, len(c.tenants))
	}
	if at < 0 {
		return fmt.Errorf("runtime: negative arrival instant %v", at)
	}
	if err := wf.Validate(); err != nil {
		return err
	}
	if err := preflightMemory(wf, c.run.cfg); err != nil {
		return err
	}
	c.submissions++
	r := c.run
	// Lookahead tables are built at submission time, outside engine
	// context: the arrival event only registers the session, keeping the
	// engine-side path free of DAG walks and allocations.
	ranks, costs := rankTables(wf, &r.cfg)
	r.pendingSubmits++
	r.eng.Schedule(at, func() {
		r.pendingSubmits--
		r.addSession(wf, int32(tenant), ranks, costs, func(s *session) {
			if onDone != nil {
				onDone(WorkflowResult{
					Tenant: int(s.tenant), Session: int(s.idx),
					Submitted: s.submitted, Finished: s.finished,
					Tasks: s.wf.Graph.Len(), Collector: s.collector,
				})
			}
			// Release the session's per-task state; the callback owns
			// whatever it kept. The session header (indices, instants)
			// stays for accounting.
			s.wf, s.collector, s.sink = nil, nil, nil
			s.remaining, s.levelWidth = nil, nil
			s.ranks, s.costs = nil, nil
			s.attempts, s.doneTask, s.inFlight, s.waiters, s.counted = nil, nil, nil, nil, nil
		})
	})
	return nil
}

// Run drives the shared virtual clock until every submitted workflow has
// completed (per-workflow results stream through the Submit callbacks).
// It returns the first fatal error — a simulation failure or a task that
// exhausted its retry budget under fault injection.
func (c *ClusterSim) Run() error {
	if c.ran {
		return errors.New("runtime: ClusterSim.Run called twice")
	}
	if c.submissions == 0 {
		return errors.New("runtime: ClusterSim.Run with no submitted workflows")
	}
	c.ran = true
	r := c.run
	if err := r.eng.Run(); err != nil {
		return fmt.Errorf("runtime: simulation failed: %w", err)
	}
	if r.failErr != nil {
		return r.failErr
	}
	if r.active != 0 || r.pendingSubmits != 0 {
		return fmt.Errorf("runtime: %d workflows unfinished at engine drain",
			r.active+r.pendingSubmits)
	}
	return nil
}

// Now returns the shared virtual clock (after Run: the horizon — the
// completion instant of the last workflow).
func (c *ClusterSim) Now() float64 { return c.run.eng.Now() }

// Utilization returns the cluster's mean core and GPU busy fractions
// over the elapsed virtual time.
func (c *ClusterSim) Utilization() (core, gpu float64) { return c.run.utilization() }

// FaultStats reports failure-injection activity across every session
// (zero when injection is disabled).
func (c *ClusterSim) FaultStats() FaultStats {
	stats := c.run.stats
	if c.run.faults != nil {
		stats.Episodes = c.run.faults.Episodes()
	}
	return stats
}
