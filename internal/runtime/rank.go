package runtime

import (
	"wfsim/internal/costmodel"
	"wfsim/internal/dag"
	"wfsim/internal/sched"
	"wfsim/internal/storage"
)

// rankTables precomputes the per-task lookahead tables the configured
// policy consumes, once per workflow:
//
//   - costs[t]: the task's estimated dedicated-resource execution time on
//     a nominal-speed node (deserialize + user code + serialize), the
//     quantity min-min orders by and earliest-finish-time placement
//     scales per candidate node.
//   - ranks[t]: the task's dispatch priority — HEFT upward rank (mean
//     execution cost across the heterogeneous cluster plus an estimated
//     producer-to-consumer transfer cost per edge) or plain b-level
//     (nominal execution cost, zero transfer) — so the critical path
//     drains first.
//
// Policies without lookahead get nil tables and pay nothing. Callers run
// this outside engine context (RunSim setup, ClusterSim.Submit), keeping
// the per-workflow allocations and DAG walks off the dispatch hot path —
// the simulated master pays for its lookahead through the calibrated
// overhead model instead.
func rankTables(wf *Workflow, cfg *SimConfig) (ranks, costs []float64) {
	switch cfg.Policy {
	case sched.HEFT, sched.BLevel, sched.MinMin:
	default:
		return nil, nil
	}
	p := cfg.Params
	g := wf.Graph
	costs = make([]float64, g.Len())
	for _, t := range g.Tasks() {
		costs[t.ID] = taskEstimate(wf, t, p, cfg.Device)
	}
	if cfg.Policy == sched.MinMin {
		return nil, costs
	}

	weight := func(t *dag.Task) float64 { return costs[t.ID] }
	if cfg.Policy == sched.BLevel {
		return sched.BLevels(g, weight), costs
	}

	// HEFT weights tasks by their mean execution cost across the cluster:
	// the mean inverse node speed scales every nominal cost identically
	// (per-task device heterogeneity is already inside costs), preserving
	// HEFT's convention without changing the rank order.
	meanInvSpeed := 1.0
	if cfg.NodeSpeed != nil {
		var sum float64
		for _, sp := range cfg.NodeSpeed {
			sum += 1 / sp
		}
		meanInvSpeed = sum / float64(len(cfg.NodeSpeed))
	}
	heftWeight := func(t *dag.Task) float64 { return costs[t.ID] * meanInvSpeed }

	// Edge transfer estimate: the producer's written bytes crossing the
	// network at NIC rate. Only local-disk storage ever moves blocks
	// between nodes; shared storage reaches every node identically, so
	// transfer does not differentiate paths and contributes zero rank.
	var comm func(from, to *dag.Task) float64
	if cfg.Storage == storage.Local && p.NICBandwidth > 0 {
		frac := 0.0
		if n := cfg.Cluster.Nodes; n > 1 {
			// A consumer lands on the producer's node 1/n of the time
			// under uniform placement; the rest of the time the bytes
			// cross the wire.
			frac = float64(n-1) / float64(n)
		}
		comm = func(from, _ *dag.Task) float64 {
			return writtenBytes(wf, from) / p.NICBandwidth * frac
		}
	}
	return sched.UpwardRanks(g, heftWeight, comm), costs
}

// taskEstimate is the per-task dedicated-resource execution time estimate
// the lookahead tables are built from: CPU decode + user code + CPU
// encode under the paper's device-assignment rule, contention excluded
// (the scheduler estimates, the simulation decides).
func taskEstimate(wf *Workflow, t *dag.Task, p *costmodel.Params, mode costmodel.DeviceKind) float64 {
	prof := wf.Spec(t).Profile
	dev := taskDevice(prof, mode)
	return p.DeserTime(prof) + p.UserCodeTimeUncontended(prof, dev) + p.SerTime(prof)
}

// writtenBytes sums the sizes of every datum the task writes — the
// payload its consumers must acquire.
func writtenBytes(wf *Workflow, t *dag.Task) float64 {
	ids := t.DataIDs()
	var b float64
	for i, prm := range t.Params {
		if prm.Writes() {
			b += wf.SizeByID(ids[i])
		}
	}
	return b
}
