package runtime

import (
	"wfsim/internal/sched"
	"wfsim/internal/sim"
)

// Arena recycles a simulated run's substrate allocations across trials:
// the engine's event-node slabs, heap/ladder storage and proc bookkeeping
// (sim.Arena), the per-task dependency counters, and the ready-queue
// input-location slab. A sweep worker that owns an Arena pays these
// allocations on its first trial only.
//
// An Arena may serve one run at a time — sharing one across concurrent
// RunSim calls is a data race. internal/runner hands each worker its own
// per-worker state for exactly this reason. Everything an Arena retains
// is either re-stamped (event nodes) or zeroed (dependency counters) on
// reuse; see DESIGN.md §12 for the full lifetime rules.
type Arena struct {
	nodes     sim.Arena
	remaining []int
	inputs    []sched.DataLoc
	load      []int
}

// grabRemaining returns a zeroed dependency-counter slice of length n,
// reusing the arena's buffer when it is large enough.
func (a *Arena) grabRemaining(n int) []int {
	if cap(a.remaining) < n {
		a.remaining = make([]int, n)
		return a.remaining
	}
	s := a.remaining[:n]
	clear(s)
	return s
}

// grabLoad returns a zeroed per-node load slice of length n.
func (a *Arena) grabLoad(n int) []int {
	if cap(a.load) < n {
		a.load = make([]int, n)
		return a.load
	}
	s := a.load[:n]
	clear(s)
	return s
}
