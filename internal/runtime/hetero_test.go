package runtime

import (
	"sort"
	"testing"

	"wfsim/internal/cluster"
	"wfsim/internal/costmodel"
	"wfsim/internal/metrics"
)

func TestNodeSpeedValidation(t *testing.T) {
	wf := fanWorkflow(4, testProf)
	if _, err := RunSim(wf, SimConfig{NodeSpeed: []float64{1, 1}}); err == nil {
		t.Fatal("wrong-length NodeSpeed accepted")
	}
	bad := make([]float64, 8)
	for i := range bad {
		bad[i] = 1
	}
	bad[3] = 0
	if _, err := RunSim(wf, SimConfig{NodeSpeed: bad}); err == nil {
		t.Fatal("zero NodeSpeed accepted")
	}
}

func TestStragglerSlowsMakespan(t *testing.T) {
	wf := func() *Workflow { return fanWorkflow(128, testProf) }
	uniform, err := RunSim(wf(), SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	speeds := make([]float64, 8)
	for i := range speeds {
		speeds[i] = 1
	}
	speeds[0] = 0.25 // one quarter-speed node
	straggler, err := RunSim(wf(), SimConfig{NodeSpeed: speeds})
	if err != nil {
		t.Fatal(err)
	}
	if straggler.Makespan <= uniform.Makespan {
		t.Fatalf("straggler makespan %v should exceed uniform %v",
			straggler.Makespan, uniform.Makespan)
	}
	// All-fast cluster beats nominal.
	for i := range speeds {
		speeds[i] = 2
	}
	fast, err := RunSim(wf(), SimConfig{NodeSpeed: speeds})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Makespan >= uniform.Makespan {
		t.Fatalf("2x nodes makespan %v should beat uniform %v", fast.Makespan, uniform.Makespan)
	}
}

// TestGPUConcurrencyInvariant verifies the paper's central resource
// constraint from the trace itself: at no virtual instant do more GPU
// tasks hold kernels than the cluster has GPU devices.
func TestGPUConcurrencyInvariant(t *testing.T) {
	prof := testProf
	prof.ParallelOps = 2e10
	wf := fanWorkflow(200, prof)
	spec := cluster.Minotauro()
	res, err := RunSim(wf, SimConfig{Device: costmodel.GPU, Cluster: spec})
	if err != nil {
		t.Fatal(err)
	}
	type event struct {
		at    float64
		delta int
	}
	var events []event
	for _, r := range res.Collector.Records() {
		if r.Stage == metrics.StageParallel && r.Device == "GPU" {
			events = append(events, event{r.Start, +1}, event{r.End, -1})
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].delta < events[j].delta // releases before acquires at ties
	})
	cur, max := 0, 0
	for _, e := range events {
		cur += e.delta
		if cur > max {
			max = cur
		}
	}
	if max > spec.TotalGPUs() {
		t.Fatalf("observed %d concurrent GPU kernels, cluster has %d devices", max, spec.TotalGPUs())
	}
	if max < spec.TotalGPUs()/2 {
		t.Fatalf("only %d concurrent GPU kernels for a 200-task fan; GPUs underused", max)
	}
}

// TestCPUConcurrencyInvariant: the same check for cores (every stage holds
// the core, so any stage interval counts).
func TestCPUConcurrencyInvariant(t *testing.T) {
	wf := fanWorkflow(300, testProf)
	spec := cluster.Minotauro()
	res, err := RunSim(wf, SimConfig{Device: costmodel.CPU, Cluster: spec})
	if err != nil {
		t.Fatal(err)
	}
	// Count overlapping per-task occupancy via deser..ser extent.
	type span struct{ s, e float64 }
	spans := map[int]*span{}
	for _, r := range res.Collector.Records() {
		if r.Stage == metrics.StageSched {
			continue // not on a core yet
		}
		sp, ok := spans[r.TaskID]
		if !ok {
			spans[r.TaskID] = &span{r.Start, r.End}
			continue
		}
		if r.Start < sp.s {
			sp.s = r.Start
		}
		if r.End > sp.e {
			sp.e = r.End
		}
	}
	type event struct {
		at    float64
		delta int
	}
	var events []event
	for _, sp := range spans {
		events = append(events, event{sp.s, +1}, event{sp.e, -1})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].delta < events[j].delta
	})
	cur, max := 0, 0
	for _, e := range events {
		cur += e.delta
		if cur > max {
			max = cur
		}
	}
	if max > spec.TotalCores() {
		t.Fatalf("observed %d concurrent tasks on %d cores", max, spec.TotalCores())
	}
}
