package runtime

import (
	"fmt"
	"strings"
	"testing"

	"wfsim/internal/costmodel"
	"wfsim/internal/dag"
	"wfsim/internal/faults"
	"wfsim/internal/metrics"
	"wfsim/internal/sched"
	"wfsim/internal/storage"
)

// tinyProf is a task that finishes much faster than a scheduling decision
// (0.2 ms of serial work vs 0.35 ms of master service time), so completions
// interleave with a backlog of pending dispatch requests.
var tinyProf = costmodel.Profile{
	Kernel:       costmodel.KernelGeneric,
	SerialOps:    1e4,
	HostMemBytes: 1e6,
}

// twoLevelFan builds width independent two-task chains a_i -> b_i.
func twoLevelFan(width int) *Workflow {
	wf := NewWorkflow("twolevel")
	for i := 0; i < width; i++ {
		x, y := fmt.Sprintf("x%d", i), fmt.Sprintf("y%d", i)
		wf.SetSize(x, 1e4)
		wf.SetSize(y, 1e4)
		wf.AddTask("a", TaskSpec{Profile: tinyProf}, dag.Param{Data: x, Dir: dag.Out})
		wf.AddTask("b", TaskSpec{Profile: tinyProf},
			dag.Param{Data: x, Dir: dag.In},
			dag.Param{Data: y, Dir: dag.Out})
	}
	return wf
}

// gridWorkflow builds `levels` dependent waves of `width` parallel chains:
// task (l, i) reads the block written by (l-1, i). Deep enough for node
// crashes to strand in-flight work and orphan already-written blocks.
func gridWorkflow(levels, width int, prof costmodel.Profile) *Workflow {
	wf := NewWorkflow("grid")
	name := func(l, i int) string { return fmt.Sprintf("x%d_%d", l, i) }
	for l := 0; l < levels; l++ {
		for i := 0; i < width; i++ {
			wf.SetSize(name(l, i), 4e6)
		}
	}
	for i := 0; i < width; i++ {
		wf.AddTask("src", TaskSpec{Profile: prof}, dag.Param{Data: name(0, i), Dir: dag.Out})
	}
	for l := 1; l < levels; l++ {
		for i := 0; i < width; i++ {
			wf.AddTask("step", TaskSpec{Profile: prof},
				dag.Param{Data: name(l-1, i), Dir: dag.In},
				dag.Param{Data: name(l, i), Dir: dag.Out})
		}
	}
	return wf
}

// TestLIFOSchedAttribution is the regression test for the dispatch-path
// timestamp bug: arrival instants were consumed in FIFO grant order while
// the LIFO discipline pops the newest ref, so a freshly enqueued task was
// attributed the oldest outstanding request's timestamp. With the enqueue
// instant riding on the TaskRef, no task's sched stage may start before
// the task could possibly be ready (all dependencies' writes finished).
func TestLIFOSchedAttribution(t *testing.T) {
	wf := twoLevelFan(64)
	res, err := RunSim(wf, SimConfig{Policy: sched.LIFO, Device: costmodel.CPU})
	if err != nil {
		t.Fatal(err)
	}
	serEnd := map[int]float64{}
	schedStart := map[int]float64{}
	for _, r := range res.Collector.Records() {
		switch r.Stage {
		case metrics.StageSer:
			serEnd[r.TaskID] = r.End
		case metrics.StageSched:
			schedStart[r.TaskID] = r.Start
		}
	}
	violations := 0
	for _, task := range wf.Graph.Tasks() {
		ready := 0.0
		for _, dep := range task.Deps() {
			if e := serEnd[dep]; e > ready {
				ready = e
			}
		}
		if schedStart[task.ID] < ready-1e-12 {
			violations++
			if violations <= 3 {
				t.Errorf("task %d (%s): sched stage starts at %v but its dependencies only finished at %v",
					task.ID, task.Name, schedStart[task.ID], ready)
			}
		}
	}
	if violations > 0 {
		t.Errorf("%d tasks attributed a sched start before readiness", violations)
	}
}

// TestUnknownReadAssertion pins the fault-free-path invariant: a missed
// block read without fault injection is a placement bug and must panic
// loudly instead of being served as free local scratch.
func TestUnknownReadAssertion(t *testing.T) {
	wf := fanWorkflow(1, testProf)
	r := &simRun{}
	defer func() {
		msg, ok := recover().(string)
		if !ok {
			t.Fatal("unknown read with faults disabled did not panic")
		}
		if !strings.Contains(msg, "placement bug") {
			t.Fatalf("panic does not name the invariant: %q", msg)
		}
	}()
	r.panicUnknownRead(wf.Graph.Task(0), 0)
}

// faultCfg is an aggressive crash schedule relative to the grid workflow's
// few-second makespan: several node losses per run.
func faultCfg(seed uint64) faults.Config {
	return faults.Config{
		Seed:     seed,
		NodeMTBF: 2.0,
		NodeMTTR: 0.3,
	}
}

// checkCompleteTrace asserts every task logged at least one full
// successful pipeline (sched + ser records) and returns the per-stage
// record counts.
func checkCompleteTrace(t *testing.T, wf *Workflow, res *SimResult) map[metrics.Stage]int {
	t.Helper()
	perTaskSer := make([]int, wf.Graph.Len())
	stageCount := map[metrics.Stage]int{}
	for _, r := range res.Collector.Records() {
		stageCount[r.Stage]++
		if r.Stage == metrics.StageSer {
			perTaskSer[r.TaskID]++
		}
	}
	for id, n := range perTaskSer {
		if n < 1 {
			t.Errorf("task %d completed no successful attempt", id)
		}
	}
	return stageCount
}

func TestSimCrashRecoveryLocalLineage(t *testing.T) {
	wf := gridWorkflow(6, 32, testProf)
	res, err := RunSim(wf, SimConfig{
		Device:  costmodel.CPU,
		Storage: storage.Local,
		Faults:  faultCfg(11),
	})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Faults
	t.Logf("faults: %+v makespan=%v", f, res.Makespan)
	if f.Crashes == 0 {
		t.Fatal("crash schedule never fired; the test exercises nothing")
	}
	if f.BlocksLost == 0 {
		t.Error("local-disk node loss lost no blocks")
	}
	if f.LineageRecomputes == 0 {
		t.Error("lost produced blocks were never recomputed by lineage")
	}
	if f.WastedWork <= 0 {
		t.Error("crashed attempts reported no wasted work")
	}
	stages := checkCompleteTrace(t, wf, res)
	if stages[metrics.StageRecovery] == 0 {
		t.Error("no StageRecovery records despite crashes")
	}
}

func TestSimCrashRecoverySharedSurvives(t *testing.T) {
	wf := gridWorkflow(6, 32, testProf)
	res, err := RunSim(wf, SimConfig{
		Device:  costmodel.CPU,
		Storage: storage.Shared,
		Faults:  faultCfg(11),
	})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Faults
	t.Logf("faults: %+v makespan=%v", f, res.Makespan)
	if f.Crashes == 0 {
		t.Fatal("crash schedule never fired")
	}
	// The decoupled backend survives node loss: recovery pays only the
	// re-queue of in-flight attempts, never block loss or recomputation.
	if f.BlocksLost != 0 {
		t.Errorf("shared storage lost %d blocks on node crash", f.BlocksLost)
	}
	if f.LineageRecomputes != 0 || f.InputRestages != 0 {
		t.Errorf("shared storage needed lineage recovery (%d recomputes, %d restages)",
			f.LineageRecomputes, f.InputRestages)
	}
	if f.CrashRequeues == 0 {
		t.Error("crashes stranded no in-flight attempts")
	}
	checkCompleteTrace(t, wf, res)
}

func TestSimTransientRetries(t *testing.T) {
	wf := gridWorkflow(4, 32, testProf)
	res, err := RunSim(wf, SimConfig{
		Device: costmodel.CPU,
		Faults: faults.Config{Seed: 3, TaskFailProb: 0.15, MaxAttempts: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Faults
	t.Logf("faults: %+v", f)
	if f.TransientFailures == 0 {
		t.Fatal("no transient failures at 15% per-attempt probability")
	}
	// The run completed, so every failure was retried within budget.
	if f.Retries != f.TransientFailures {
		t.Errorf("retries %d != transient failures %d in a completed run",
			f.Retries, f.TransientFailures)
	}
	if f.WastedWork <= 0 {
		t.Error("failed attempts reported no wasted work")
	}
	checkCompleteTrace(t, wf, res)
}

func TestSimRetryExhaustion(t *testing.T) {
	wf := fanWorkflow(8, testProf)
	_, err := RunSim(wf, SimConfig{
		Device: costmodel.CPU,
		Faults: faults.Config{Seed: 5, TaskFailProb: 0.97, MaxAttempts: 2},
	})
	if err == nil {
		t.Fatal("97% failure probability with 2 attempts completed; expected exhaustion")
	}
	if !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("exhaustion error does not say so: %v", err)
	}
}

func TestSimStragglerEpisodes(t *testing.T) {
	wf := gridWorkflow(4, 64, testProf)
	base, err := RunSim(wf, SimConfig{Device: costmodel.CPU})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := RunSim(wf, SimConfig{
		Device: costmodel.CPU,
		Faults: faults.Config{
			Seed: 9, StragglerMTBF: 0.5, StragglerDuration: 0.5, StragglerFactor: 0.2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("makespan %v -> %v, episodes %d", base.Makespan, slow.Makespan, slow.Faults.Episodes)
	if slow.Faults.Episodes == 0 {
		t.Fatal("no straggler episodes fired")
	}
	if slow.Makespan <= base.Makespan {
		t.Errorf("straggler episodes did not slow the run: %v <= %v", slow.Makespan, base.Makespan)
	}
}

// TestSimFaultRunDeterministic pins byte-level reproducibility of a faulty
// run at the runtime layer (the root-level test covers the full K-means
// trace): same seed, same stats, same makespan.
func TestSimFaultRunDeterministic(t *testing.T) {
	run := func() *SimResult {
		wf := gridWorkflow(5, 24, testProf)
		res, err := RunSim(wf, SimConfig{
			Device:  costmodel.CPU,
			Storage: storage.Local,
			Faults: faults.Config{
				Seed: 21, NodeMTBF: 1.5, NodeMTTR: 0.25, TaskFailProb: 0.05,
				StragglerMTBF: 2, StragglerDuration: 0.4,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan {
		t.Errorf("makespan differs across identical faulty runs: %v vs %v", a.Makespan, b.Makespan)
	}
	if a.Faults != b.Faults {
		t.Errorf("fault stats differ across identical faulty runs:\n  %+v\n  %+v", a.Faults, b.Faults)
	}
	if a.Collector.Len() != b.Collector.Len() {
		t.Errorf("record counts differ: %d vs %d", a.Collector.Len(), b.Collector.Len())
	}
}

// TestSimFaultsDisabledIsNoOp double-checks the strict no-op contract at
// the result level: a zero FaultConfig must not perturb a run at all.
func TestSimFaultsDisabledIsNoOp(t *testing.T) {
	wf := gridWorkflow(4, 16, testProf)
	plain, err := RunSim(wf, SimConfig{Device: costmodel.CPU})
	if err != nil {
		t.Fatal(err)
	}
	zeroed, err := RunSim(wf, SimConfig{Device: costmodel.CPU, Faults: faults.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Makespan != zeroed.Makespan || plain.Collector.Len() != zeroed.Collector.Len() {
		t.Errorf("zero fault config perturbed the run: makespan %v vs %v, records %d vs %d",
			plain.Makespan, zeroed.Makespan, plain.Collector.Len(), zeroed.Collector.Len())
	}
	if zeroed.Faults != (FaultStats{}) {
		t.Errorf("fault stats non-zero without injection: %+v", zeroed.Faults)
	}
}
