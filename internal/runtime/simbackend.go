package runtime

import (
	"errors"
	"fmt"
	"sort"

	"wfsim/internal/cluster"
	"wfsim/internal/costmodel"
	"wfsim/internal/dag"
	"wfsim/internal/metrics"
	"wfsim/internal/sched"
	"wfsim/internal/sim"
	"wfsim/internal/storage"
)

// SimConfig selects the execution environment for a simulated run: the
// factor combination of the paper's Table 1 (resources + system
// dimensions).
type SimConfig struct {
	// Cluster is the topology; defaults to Minotauro when zero.
	Cluster cluster.Spec
	// Params are the calibrated device/link rates; defaults to
	// costmodel.DefaultParams when zero.
	Params *costmodel.Params
	// Storage selects the storage architecture factor.
	Storage storage.Architecture
	// Policy selects the scheduling policy factor.
	Policy sched.Policy
	// Device selects the processor-type factor: with GPU, every task with
	// a parallel fraction is GPU-accelerated (the paper's assignment rule,
	// §3.3); serial tasks always run on CPU.
	Device costmodel.DeviceKind
	// Seed feeds the Random scheduling policy.
	Seed uint64
	// NodeSpeed optionally scales per-node compute rates (1.0 = nominal,
	// 0.5 = half-speed straggler). Length must match the cluster's node
	// count when set. Models resource heterogeneity beyond the paper's
	// uniform testbed — useful for scheduler stress studies.
	NodeSpeed []float64
}

func (c SimConfig) withDefaults() SimConfig {
	if c.Cluster.Nodes == 0 {
		c.Cluster = cluster.Minotauro()
	}
	if c.Params == nil {
		p := costmodel.DefaultParams()
		c.Params = &p
	}
	return c
}

// SimResult is the outcome of a simulated run.
type SimResult struct {
	// Collector holds every per-stage record for aggregation.
	Collector *metrics.Collector
	// Makespan is the workflow's total virtual execution time.
	Makespan float64
	// CoreUtilization and GPUUtilization are mean busy fractions.
	CoreUtilization float64
	GPUUtilization  float64
	// SchedDecisions counts scheduler dispatches (== tasks).
	SchedDecisions int
}

// RunSim executes the workflow on the simulated cluster and returns the
// collected metrics. It returns costmodel.ErrGPUOOM / ErrHostOOM when any
// task's footprint exceeds device/host memory — the "GPU OOM" and "CPU GPU
// OOM" annotations in the paper's figures — without running the workflow,
// matching how an OOM aborts the paper's real executions.
func RunSim(wf *Workflow, cfg SimConfig) (*SimResult, error) {
	cfg = cfg.withDefaults()
	if err := wf.Validate(); err != nil {
		return nil, err
	}
	if cfg.NodeSpeed != nil {
		if len(cfg.NodeSpeed) != cfg.Cluster.Nodes {
			return nil, fmt.Errorf("runtime: NodeSpeed has %d entries for %d nodes",
				len(cfg.NodeSpeed), cfg.Cluster.Nodes)
		}
		for i, s := range cfg.NodeSpeed {
			if s <= 0 {
				return nil, fmt.Errorf("runtime: NodeSpeed[%d] = %v, must be positive", i, s)
			}
		}
	}
	params := cfg.Params
	if err := params.Validate(); err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}

	// Pre-flight memory check over every task at its assigned device.
	for _, t := range wf.Graph.Tasks() {
		spec := wf.Spec(t)
		dev := taskDevice(spec.Profile, cfg.Device)
		if err := params.CheckMemory(spec.Profile, dev); err != nil {
			return nil, fmt.Errorf("task %d (%s): %w", t.ID, t.Name, err)
		}
	}

	eng := sim.New()
	clu, err := cluster.Build(eng, cfg.Cluster, *params)
	if err != nil {
		return nil, err
	}
	store, err := storage.New(cfg.Storage, clu)
	if err != nil {
		return nil, err
	}
	scheduler, err := sched.New(cfg.Policy, cfg.Seed)
	if err != nil {
		return nil, err
	}

	run := &simRun{
		wf: wf, cfg: cfg, params: params,
		eng: eng, clu: clu, store: store, scheduler: scheduler,
		collector: metrics.NewCollector(),
		remaining: make([]int, wf.Graph.Len()),
		load:      make([]int, cfg.Cluster.Nodes),
		slots:     make([][]bool, cfg.Cluster.Nodes),
	}
	// Every record buffer append lands in one up-front allocation: the
	// record count is bounded by tasks × stages.
	run.collector.Grow(wf.Graph.Len() * metrics.NumStages)
	for i := range run.slots {
		run.slots[i] = make([]bool, cfg.Cluster.CoresPerNode)
	}
	for _, lvl := range wf.Graph.Levels() {
		run.levelWidth = append(run.levelWidth, len(lvl))
	}

	// Pre-place workflow input data: shared storage registers the keys;
	// local disks receive blocks round-robin across nodes, the balanced
	// initial distribution a data-aware loader would produce. Keys are
	// placed largest-first so the dataset blocks land evenly and small
	// broadcast data (e.g. K-means centers) doesn't skew the rotation.
	keys := wf.InputKeys()
	sort.SliceStable(keys, func(i, j int) bool { return wf.sizes[keys[i]] > wf.sizes[keys[j]] })
	for i, key := range keys {
		store.Place(key, i%cfg.Cluster.Nodes)
	}

	// Seed the ready queue with dependency-free tasks in generation order.
	for _, t := range wf.Graph.Tasks() {
		run.remaining[t.ID] = len(t.Deps())
	}
	for _, t := range wf.Graph.Tasks() {
		if run.remaining[t.ID] == 0 {
			run.enqueue(t)
		}
	}

	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("runtime: simulation failed: %w", err)
	}
	if run.done != wf.Graph.Len() {
		return nil, fmt.Errorf("runtime: %d of %d tasks completed", run.done, wf.Graph.Len())
	}

	res := &SimResult{
		Collector:      run.collector,
		Makespan:       eng.Now(),
		SchedDecisions: run.done,
	}
	var coreBusy, gpuBusy float64
	for _, n := range clu.Nodes {
		coreBusy += n.Cores.BusyTime()
		gpuBusy += n.GPUs.BusyTime()
	}
	if eng.Now() > 0 {
		res.CoreUtilization = coreBusy / (float64(cfg.Cluster.TotalCores()) * eng.Now())
		if cfg.Cluster.TotalGPUs() > 0 {
			res.GPUUtilization = gpuBusy / (float64(cfg.Cluster.TotalGPUs()) * eng.Now())
		}
	}
	return res, nil
}

// taskDevice applies the paper's assignment rule: serial tasks to CPUs;
// partially or fully parallel tasks to GPUs when GPU mode is selected.
func taskDevice(prof costmodel.Profile, mode costmodel.DeviceKind) costmodel.DeviceKind {
	if mode == costmodel.GPU && prof.ParallelOps > 0 {
		return costmodel.GPU
	}
	return costmodel.CPU
}

// simRun is the mutable state of one simulated execution. All fields are
// touched only from engine context (single-threaded), so no locking.
type simRun struct {
	wf        *Workflow
	cfg       SimConfig
	params    *costmodel.Params
	eng       *sim.Engine
	clu       *cluster.Cluster
	store     storage.System
	scheduler sched.Scheduler
	collector *metrics.Collector

	queue      sched.Queue
	remaining  []int    // unmet dependency count per task
	load       []int    // outstanding tasks per node
	slots      [][]bool // physical core occupancy per node, for core naming
	levelWidth []int    // tasks per DAG level
	done       int
}

// acquireSlot returns the lowest free core index on a node, so repeated
// waves reuse the same physical cores — required for the paper's per-core
// (de)serialization aggregation to be meaningful.
func (r *simRun) acquireSlot(node int) int {
	for i, busy := range r.slots[node] {
		if !busy {
			r.slots[node][i] = true
			return i
		}
	}
	panic(fmt.Sprintf("runtime: no free core slot on node %d despite server grant", node))
}

// enqueue registers a ready task and spawns its dispatch/execute process.
// The process name is a constant: per-task names would cost a fmt.Sprintf
// per task and are never surfaced (the scheduler decides at grant time
// which queued task the process actually runs).
func (r *simRun) enqueue(t *dag.Task) {
	ref := sched.TaskRef{ID: t.ID, Name: t.Name}
	nReads := 0
	for _, p := range t.Params {
		if p.Reads() {
			nReads++
		}
	}
	if nReads > 0 {
		ref.Inputs = make([]sched.DataLoc, 0, nReads)
		for _, p := range t.Params {
			if p.Reads() {
				ref.Inputs = append(ref.Inputs, sched.DataLoc{Key: p.Data, Bytes: r.wf.sizes[p.Data]})
			}
		}
	}
	r.queue.Push(ref)
	r.eng.Go("task", r.taskProc)
}

// taskProc is the full lifecycle of one dispatched task: scheduling on the
// master, then the Figure 4 pipeline on the placed node.
func (r *simRun) taskProc(p *sim.Proc) {
	// --- Scheduling: serialize through the capacity-1 master and pay the
	// policy's decision cost. The task actually dispatched is whichever
	// the policy selects from the ready queue at grant time.
	schedStart := p.Now()
	r.clu.Master.Acquire(p)
	ref, ok := r.scheduler.Next(&r.queue)
	if !ok {
		// Cannot happen: one process per queued ref.
		r.clu.Master.Release()
		panic("runtime: ready queue empty at dispatch")
	}
	p.Wait(r.scheduler.Overhead(*r.params))
	view := &sched.View{
		NumNodes: r.cfg.Cluster.Nodes,
		Load:     r.load,
		Locate:   r.store.Location,
	}
	nodeID := r.scheduler.Place(ref, view)
	r.clu.Master.Release()
	if nodeID < 0 || nodeID >= r.cfg.Cluster.Nodes {
		panic(fmt.Sprintf("runtime: scheduler placed task %d on invalid node %d", ref.ID, nodeID))
	}
	r.load[nodeID]++

	task := r.wf.Graph.Task(ref.ID)
	spec := r.wf.Spec(task)
	prof := spec.Profile
	dev := taskDevice(prof, r.cfg.Device)
	node := r.clu.Node(nodeID)
	speed := 1.0 // CPU-side compute-rate multiplier for this node
	if r.cfg.NodeSpeed != nil {
		speed = r.cfg.NodeSpeed[nodeID]
	}

	core := -1 // assigned once the core is actually held
	rec := func(stage metrics.Stage, start, end float64) {
		r.collector.Add(metrics.Record{
			TaskID: task.ID, TaskName: task.Name, Level: task.Level,
			Node: nodeID, Core: core, Device: dev.String(),
			Stage: stage, Start: start, End: end,
		})
	}
	rec(metrics.StageSched, schedStart, p.Now())

	// --- Occupy a worker core for the whole task (COMPSs binds the task
	// to a core; GPU tasks keep their host core while the kernel runs).
	// A GPU-accelerated task additionally reserves its GPU device for its
	// entire lifetime (a COMPSs {CPU:1, GPU:1} constraint: GPU worker
	// deployments expose one executor slot per device). This is why "we
	// can execute in parallel a maximum of 128 CPU-based tasks and only
	// 32 GPU-accelerated tasks" (§3.3) — the task-level-parallelism
	// asymmetry at the heart of the paper's parallel-task results.
	node.Cores.Acquire(p)
	slot := r.acquireSlot(nodeID)
	core = nodeID*r.cfg.Cluster.CoresPerNode + slot
	if dev == costmodel.GPU {
		node.GPUs.Acquire(p)
	}

	// --- Deserialization: storage reads of every input, then CPU decode.
	dStart := p.Now()
	var readBytes float64
	for _, in := range ref.Inputs {
		r.store.Read(p, node, in.Key, in.Bytes)
		readBytes += in.Bytes
	}
	if readBytes > 0 {
		p.Wait(readBytes / r.params.DeserRate / speed)
	}
	rec(metrics.StageDeser, dStart, p.Now())

	// --- User code.
	switch dev {
	case costmodel.GPU:
		// Host-to-device transfer on the node's contended PCIe bus.
		gStart := p.Now()
		if prof.BytesIn > 0 {
			node.PCIe.Transfer(p, prof.BytesIn)
		}
		rec(metrics.StageCommIn, gStart, p.Now())

		kStart := p.Now()
		p.Wait(r.params.ParallelTime(prof, costmodel.GPU))
		rec(metrics.StageParallel, kStart, p.Now())

		oStart := p.Now()
		if prof.BytesOut > 0 {
			node.PCIe.Transfer(p, prof.BytesOut)
		}
		rec(metrics.StageCommOut, oStart, p.Now())
	case costmodel.CPU:
		kStart := p.Now()
		if prof.ParallelOps > 0 {
			t := r.params.ParallelTime(prof, costmodel.CPU)
			// A task alone at its DAG level has no task-level
			// parallelism to protect: its vectorized kernel spreads over
			// the node's idle cores (NumPy/BLAS threading), which is why
			// the paper's parallel-task time *drops* at the maximum
			// block size (§5.3) instead of growing further.
			if r.levelWidth[task.Level] == 1 {
				t /= r.params.SoloThreadSpeedup
			}
			p.Wait(t / speed)
		}
		rec(metrics.StageParallel, kStart, p.Now())
	}

	// Serial fraction always runs on the host core (§3.3).
	sStart := p.Now()
	if prof.SerialOps > 0 {
		p.Wait(r.params.SerialTime(prof) / speed)
	}
	rec(metrics.StageSerial, sStart, p.Now())

	// --- Serialization: CPU encode, then storage writes of every output.
	wStart := p.Now()
	var wroteBytes float64
	for _, prm := range task.Params {
		if prm.Writes() {
			wroteBytes += r.wf.sizes[prm.Data]
		}
	}
	if wroteBytes > 0 {
		p.Wait(wroteBytes / r.params.SerRate / speed)
	}
	for _, prm := range task.Params {
		if prm.Writes() {
			r.store.Write(p, node, prm.Data, r.wf.sizes[prm.Data])
		}
	}
	rec(metrics.StageSer, wStart, p.Now())

	if dev == costmodel.GPU {
		node.GPUs.Release()
	}
	r.slots[nodeID][slot] = false
	node.Cores.Release()
	r.load[nodeID]--
	r.done++

	// Release successors whose dependencies are now all met, in ID order.
	for _, s := range task.Succs() {
		r.remaining[s]--
		if r.remaining[s] == 0 {
			r.enqueue(r.wf.Graph.Task(s))
		}
	}
}

// ErrOOM reports whether err is a memory-capacity error (either kind).
func ErrOOM(err error) bool {
	return errors.Is(err, costmodel.ErrGPUOOM) || errors.Is(err, costmodel.ErrHostOOM)
}
