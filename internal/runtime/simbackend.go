package runtime

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"wfsim/internal/cluster"
	"wfsim/internal/costmodel"
	"wfsim/internal/dag"
	"wfsim/internal/faults"
	"wfsim/internal/metrics"
	"wfsim/internal/sched"
	"wfsim/internal/sim"
	"wfsim/internal/storage"
)

// SimConfig selects the execution environment for a simulated run: the
// factor combination of the paper's Table 1 (resources + system
// dimensions).
type SimConfig struct {
	// Cluster is the topology; defaults to Minotauro when zero.
	Cluster cluster.Spec
	// Params are the calibrated device/link rates; defaults to
	// costmodel.DefaultParams when zero.
	Params *costmodel.Params
	// Storage selects the storage architecture factor.
	Storage storage.Architecture
	// Policy selects the scheduling policy factor.
	Policy sched.Policy
	// Device selects the processor-type factor: with GPU, every task with
	// a parallel fraction is GPU-accelerated (the paper's assignment rule,
	// §3.3); serial tasks always run on CPU.
	Device costmodel.DeviceKind
	// Seed feeds the Random scheduling policy.
	Seed uint64
	// NodeSpeed optionally scales per-node compute rates (1.0 = nominal,
	// 0.5 = half-speed straggler). Length must match the cluster's node
	// count when set. Models resource heterogeneity beyond the paper's
	// uniform testbed — useful for scheduler stress studies.
	NodeSpeed []float64
	// Faults parameterizes deterministic failure injection (node
	// crashes, transient task failures, straggler episodes). The zero
	// value disables injection entirely: the run is byte-identical to
	// one built before the fault machinery existed.
	Faults faults.Config
	// EventQueue selects the engine's pending-event queue. The default
	// (sim.QueueAuto) starts on the 4-ary heap and migrates to the
	// ladder queue when pending events cross the engine's threshold;
	// both implementations pop in identical (at, seq) order, so the knob
	// never changes a run's trace — only its speed at scale.
	EventQueue sim.QueueKind
	// Sink, when non-nil, streams every stage record into the given
	// consumer instead of retaining them in a run-private Collector:
	// metrics memory becomes O(aggregate state) instead of O(tasks), the
	// regime million-task runs need. SimResult.Collector is nil in this
	// mode (per-workflow results from ClusterSim likewise carry no
	// collector). The sink must not be shared with a concurrent run; in
	// a multi-workflow run every session feeds the same sink.
	Sink metrics.Sink
	// Arena, when non-nil, recycles substrate storage (event-node slabs,
	// queue backing, dependency counters, input slabs) across runs that
	// release into it. One run at a time per arena.
	Arena *Arena
}

func (c SimConfig) withDefaults() SimConfig {
	if c.Cluster.Nodes == 0 {
		c.Cluster = cluster.Minotauro()
	}
	if c.Params == nil {
		p := costmodel.DefaultParams()
		c.Params = &p
	}
	return c
}

// Validate rejects structurally invalid configurations with an error
// instead of silently patching them. The zero cluster spec is legal (it
// means "use the default topology"), but a partially-filled spec with
// non-positive node or core counts is an error, as are negative fault
// rates — a disabled-but-negative fault config used to be silently
// ignored. NodeSpeed entries must be positive; the length-vs-cluster
// check happens after defaults are applied, where the final node count
// is known.
func (c SimConfig) Validate() error {
	if c.Cluster.Nodes != 0 || c.Cluster.CoresPerNode != 0 || c.Cluster.GPUsPerNode != 0 {
		if err := c.Cluster.Validate(); err != nil {
			return fmt.Errorf("runtime: %w", err)
		}
	}
	if err := c.Faults.CheckRanges(); err != nil {
		return fmt.Errorf("runtime: %w", err)
	}
	for i, s := range c.NodeSpeed {
		if s <= 0 {
			return fmt.Errorf("runtime: NodeSpeed[%d] = %v, must be positive", i, s)
		}
	}
	switch c.EventQueue {
	case sim.QueueAuto, sim.QueueHeap, sim.QueueLadder:
	default:
		return fmt.Errorf("runtime: unknown EventQueue kind %d", c.EventQueue)
	}
	return nil
}

// FaultStats summarizes what failure injection did to a run and what
// recovery cost. All fields are zero when injection is disabled.
type FaultStats struct {
	// Crashes is the number of node crash events.
	Crashes int
	// BlocksLost counts blocks whose only copy died with a node's local
	// disk (always 0 on shared storage).
	BlocksLost int
	// Episodes is the number of straggler slowdown episodes.
	Episodes int
	// TransientFailures counts task attempts killed by injected
	// per-attempt failures.
	TransientFailures int
	// Retries counts re-queues of transiently failed tasks (one per
	// failure that did not exhaust MaxAttempts).
	Retries int
	// CrashRequeues counts attempts re-queued because their node crashed
	// under them.
	CrashRequeues int
	// Stalls counts dispatches that found every node down and had to
	// wait for a repair.
	Stalls int
	// LineageRecomputes counts producer tasks re-executed to
	// re-materialize blocks lost with a local disk.
	LineageRecomputes int
	// InputRestages counts workflow input blocks re-fetched from the
	// durable source after their staged copy was lost.
	InputRestages int
	// WastedWork is total core time burned by aborted attempts.
	WastedWork float64
	// RecoveryWork is total core time spent re-executing
	// already-completed producer tasks for lineage recovery.
	RecoveryWork float64
}

// SimResult is the outcome of a simulated run.
type SimResult struct {
	// Collector holds every per-stage record for aggregation.
	Collector *metrics.Collector
	// Makespan is the workflow's total virtual execution time.
	Makespan float64
	// CoreUtilization and GPUUtilization are mean busy fractions.
	CoreUtilization float64
	GPUUtilization  float64
	// SchedDecisions counts scheduler dispatches (== tasks).
	SchedDecisions int
	// Faults reports failure-injection activity (zero when disabled).
	Faults FaultStats
}

// RunSim executes the workflow on the simulated cluster and returns the
// collected metrics. It returns costmodel.ErrGPUOOM / ErrHostOOM when any
// task's footprint exceeds device/host memory — the "GPU OOM" and "CPU GPU
// OOM" annotations in the paper's figures — without running the workflow,
// matching how an OOM aborts the paper's real executions.
func RunSim(wf *Workflow, cfg SimConfig) (*SimResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if err := wf.Validate(); err != nil {
		return nil, err
	}
	if cfg.NodeSpeed != nil && len(cfg.NodeSpeed) != cfg.Cluster.Nodes {
		return nil, fmt.Errorf("runtime: NodeSpeed has %d entries for %d nodes",
			len(cfg.NodeSpeed), cfg.Cluster.Nodes)
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}
	fcfg := cfg.Faults.WithDefaults()
	if fcfg.Enabled() {
		if err := fcfg.Validate(); err != nil {
			return nil, fmt.Errorf("runtime: %w", err)
		}
	}
	if err := preflightMemory(wf, cfg); err != nil {
		return nil, err
	}

	run, err := newSimRun(cfg, wf.Graph.NumData())
	if err != nil {
		return nil, err
	}
	ranks, costs := rankTables(wf, &cfg)
	s := run.addSession(wf, 0, ranks, costs, nil)

	if err := run.eng.Run(); err != nil {
		return nil, fmt.Errorf("runtime: simulation failed: %w", err)
	}
	if run.failErr != nil {
		return nil, run.failErr
	}
	if s.done != wf.Graph.Len() {
		return nil, fmt.Errorf("runtime: %d of %d tasks completed", s.done, wf.Graph.Len())
	}

	res := &SimResult{
		Collector:      s.collector,
		Makespan:       run.eng.Now(),
		SchedDecisions: s.done,
	}
	if run.faults != nil {
		run.stats.Episodes = run.faults.Episodes()
		res.Faults = run.stats
	}
	res.CoreUtilization, res.GPUUtilization = run.utilization()
	if a := cfg.Arena; a != nil {
		// The engine is drained; donate its substrate storage back for
		// the caller's next trial.
		run.eng.Release(&a.nodes)
	}
	return res, nil
}

// preflightMemory checks every task's footprint at its assigned device
// before any simulation runs, matching how an OOM aborts the paper's real
// executions before useful work completes.
func preflightMemory(wf *Workflow, cfg SimConfig) error {
	for _, t := range wf.Graph.Tasks() {
		spec := wf.Spec(t)
		dev := taskDevice(spec.Profile, cfg.Device)
		if err := cfg.Params.CheckMemory(spec.Profile, dev); err != nil {
			return fmt.Errorf("task %d (%s): %w", t.ID, t.Name, err)
		}
	}
	return nil
}

// taskDevice applies the paper's assignment rule: serial tasks to CPUs;
// partially or fully parallel tasks to GPUs when GPU mode is selected.
func taskDevice(prof costmodel.Profile, mode costmodel.DeviceKind) costmodel.DeviceKind {
	if mode == costmodel.GPU && prof.ParallelOps > 0 {
		return costmodel.GPU
	}
	return costmodel.CPU
}

// session is the state of one submitted workflow instance within a
// (possibly multiplexed) engine: dependency counters, its own metrics
// collector, its slice of the global datum-ID space, and the fault-path
// bookkeeping. A single-workflow run is exactly one session over the
// substrate; a multi-tenant run streams many sessions through it.
type session struct {
	// idx is the session's index in simRun.sessions; refs carry it so the
	// dispatch path finds the owning session without a map.
	idx    int32
	tenant int32
	wf     *Workflow
	// collector receives this workflow's stage records only, so teardown
	// can hand per-workflow metrics back while the cluster keeps running.
	// nil in streaming mode, where records flow to the shared sink instead.
	collector *metrics.Collector
	// sink is where stage records actually land: the session's own
	// collector normally, the run's shared SimConfig.Sink in streaming
	// mode. Never nil while the session runs.
	sink      metrics.Sink
	remaining []int // unmet dependency count per task
	// levelWidth is tasks per DAG level (solo-task thread-speedup rule).
	levelWidth []int
	// ranks and costs are the per-task lookahead tables the configured
	// policy consumes (HEFT upward ranks / b-levels, and estimated
	// dedicated-resource execution times), computed once per workflow
	// outside engine context (see rankTables) and stamped onto refs at
	// enqueue. nil for policies without lookahead.
	ranks, costs []float64
	// dataBase offsets this workflow's dense datum IDs into the shared
	// storage system's global ID space: workflows intern IDs from 0
	// independently, so co-resident sessions must not collide.
	dataBase  int32
	submitted float64
	finished  float64
	done      int
	ended     bool
	// onDone fires engine-side the instant the session's last task
	// completes; nil for single-workflow runs (RunSim reads the session
	// directly after the engine drains).
	onDone func(*session)

	// Fault-path state, nil when injection is disabled.
	attempts []int32   // transient failures accumulated per task
	doneTask []bool    // completed at least once (lineage may re-run it)
	inFlight []bool    // queued or executing right now
	waiters  [][]int32 // tasks parked on a producer's re-execution

	// counted marks tasks currently holding one unit of their tenant's
	// admission quota; nil outside multi-tenant mode.
	counted []bool
}

// gid maps a workflow-local datum ID into the shared global ID space.
func (s *session) gid(id int32) int32 { return id + s.dataBase }

// fairShare is the multi-tenant dispatch gate: weighted fair-share tenant
// selection at every grant, plus per-tenant admission quotas with
// overflow parking. nil in single-workflow runs, whose dispatch path is
// byte-identical to the pre-multi-tenant runtime.
type fairShare struct {
	weights   []float64
	served    []float64     // grants charged per tenant (stride accounting)
	quota     []int         // max concurrently admitted tasks (0 = unlimited)
	occupancy []int         // admitted (queued or running) tasks per tenant
	overflow  []sched.Queue // refs parked over quota, admitted FIFO on release
}

// pick selects the tenant to dispatch for: the backlogged tenant with the
// lowest served/weight pass, lowest tenant ID on ties (deterministic).
func (m *fairShare) pick(q *sched.Queue) int32 {
	best := int32(-1)
	var bestPass float64
	for t := range m.weights {
		if q.TenantLen(int32(t)) == 0 {
			continue
		}
		if pass := m.served[t] / m.weights[t]; best < 0 || pass < bestPass {
			best, bestPass = int32(t), pass
		}
	}
	if best >= 0 {
		m.served[best]++
	}
	return best
}

// simRun is the cluster substrate of a simulated execution: the engine,
// the built cluster, storage, the scheduler and the dispatch machinery,
// shared by every session it hosts. All fields are touched only from
// engine context (single-threaded), so no locking.
type simRun struct {
	cfg       SimConfig
	params    *costmodel.Params
	eng       *sim.Engine
	clu       *cluster.Cluster
	store     storage.System
	scheduler sched.Scheduler

	queue      sched.Queue
	granted    sched.Queue     // refs popped at grant instants, consumed in grant order
	view       sched.View      // reused across every placement decision
	taskProcFn func(*sim.Proc) // bound once; a per-enqueue method value would allocate
	requestFn  func()          // bound once: Master.Request
	load       []int           // outstanding tasks per node
	slots      [][]uint64      // per-node free-core bitmap (bit set = free)
	inputSlab  []sched.DataLoc

	sessions       []*session
	active         int   // sessions submitted and not yet finished
	pendingSubmits int   // arrival events scheduled but not yet fired
	nextData       int32 // next free global datum ID
	multi          *fairShare

	// Fault-injection state; every field below is nil/zero and untouched
	// in a fault-free run, keeping the hot path allocation-free.
	faults  *faults.Injector
	fcfg    faults.Config
	stats   FaultStats
	stalled sched.Queue // refs dispatched while every node was down
	failErr error       // fatal failure: retry budget exhausted
}

// newSimRun builds the substrate: engine, cluster, storage, scheduler,
// dispatch bindings and (when enabled) the fault injector, scheduled
// before any session's arrivals so the fault event stream matches the
// pre-refactor runtime exactly. The caller applies withDefaults and
// validates first.
func newSimRun(cfg SimConfig, numDataHint int) (*simRun, error) {
	var eng *sim.Engine
	if cfg.Arena != nil {
		eng = sim.NewIn(&cfg.Arena.nodes)
	} else {
		eng = sim.New()
	}
	eng.SetQueueKind(cfg.EventQueue)
	clu, err := cluster.Build(eng, cfg.Cluster, *cfg.Params)
	if err != nil {
		return nil, err
	}
	store, err := storage.New(cfg.Storage, clu, numDataHint)
	if err != nil {
		return nil, err
	}
	scheduler, err := sched.New(cfg.Policy, cfg.Seed)
	if err != nil {
		return nil, err
	}
	r := &simRun{
		cfg: cfg, params: cfg.Params,
		eng: eng, clu: clu, store: store, scheduler: scheduler,
		slots: make([][]uint64, cfg.Cluster.Nodes),
	}
	if a := cfg.Arena; a != nil {
		r.load = a.grabLoad(cfg.Cluster.Nodes)
		r.inputSlab = a.inputs[:0]
	} else {
		r.load = make([]int, cfg.Cluster.Nodes)
	}
	r.taskProcFn = r.taskProc
	r.requestFn = clu.Master.Request
	// The master grant callback pops the ready queue at the exact grant
	// instant and schedules the task process to start once the decision's
	// service time has elapsed. Dispatch requests are procless events, so a
	// ready task costs no goroutine handoffs until it is actually granted.
	clu.Master.SetOnGrant(r.grantNext)
	// The scheduler view is stable for the whole run: Load and Locate are
	// live references into the run state, so one View serves every
	// placement decision. Speed and XferRate feed the lookahead policies'
	// earliest-finish-time estimates.
	r.view = sched.View{
		NumNodes: cfg.Cluster.Nodes,
		Load:     r.load,
		Locate:   store.Location,
		Speed:    cfg.NodeSpeed,
		XferRate: cfg.Params.NICBandwidth,
	}
	if b, ok := scheduler.(sched.ViewBinder); ok {
		b.BindView(&r.view)
	}
	// Core-occupancy bitmaps: bit i set = physical core i free.
	words := (cfg.Cluster.CoresPerNode + 63) / 64
	for i := range r.slots {
		r.slots[i] = make([]uint64, words)
		for c := 0; c < cfg.Cluster.CoresPerNode; c++ {
			r.slots[i][c/64] |= 1 << (c % 64)
		}
	}

	fcfg := cfg.Faults.WithDefaults()
	if fcfg.Enabled() {
		inj := faults.NewInjector(eng, fcfg, cfg.Cluster.Nodes)
		r.faults = inj
		r.fcfg = fcfg
		// The scheduler sees node up/down state live; placement never
		// targets a down node.
		r.view.Up = inj.UpNodes()
		inj.OnCrash = r.onNodeCrash
		inj.OnRepair = r.onNodeRepair
		inj.Start()
	}
	return r, nil
}

// addSession registers one workflow on the substrate at the current
// virtual instant: allocates its session state and datum-ID range,
// pre-places its input data, and enqueues its dependency-free tasks in
// generation order. Runs engine-side (or before eng.Run for the
// single-workflow case, where the instant is 0). ranks and costs are the
// workflow's precomputed lookahead tables (rankTables) — computed by the
// caller, outside engine context, so the hot path never builds them.
func (r *simRun) addSession(wf *Workflow, tenant int32, ranks, costs []float64, onDone func(*session)) *session {
	s := &session{
		idx: int32(len(r.sessions)), tenant: tenant, wf: wf,
		remaining: r.grabRemaining(wf.Graph.Len()),
		ranks:     ranks,
		costs:     costs,
		dataBase:  r.nextData,
		submitted: r.eng.Now(),
		onDone:    onDone,
	}
	if r.cfg.Sink != nil {
		// Streaming mode: records fold into the shared sink as they are
		// produced; nothing per-task is retained.
		s.sink = r.cfg.Sink
	} else {
		s.collector = metrics.NewCollector()
		s.sink = s.collector
		// Every record buffer append lands in one up-front allocation: the
		// record count is bounded by tasks × stages (faulty runs may append
		// past it; they are not on the allocation-free path anyway).
		s.collector.Grow(wf.Graph.Len() * metrics.NumStages)
	}
	r.nextData += int32(wf.Graph.NumData())
	r.sessions = append(r.sessions, s)
	r.active++
	for _, lvl := range wf.Graph.Levels() {
		s.levelWidth = append(s.levelWidth, len(lvl))
	}
	if r.faults != nil {
		s.attempts = make([]int32, wf.Graph.Len())
		s.doneTask = make([]bool, wf.Graph.Len())
		s.inFlight = make([]bool, wf.Graph.Len())
		s.waiters = make([][]int32, wf.Graph.Len())
	}
	if r.multi != nil {
		s.counted = make([]bool, wf.Graph.Len())
	}

	// Pre-place workflow input data: shared storage registers the keys;
	// local disks receive blocks round-robin across nodes, the balanced
	// initial distribution a data-aware loader would produce. Keys are
	// placed largest-first so the dataset blocks land evenly and small
	// broadcast data (e.g. K-means centers) doesn't skew the rotation.
	inputs := wf.InputIDs()
	sort.SliceStable(inputs, func(i, j int) bool {
		return wf.SizeByID(inputs[i]) > wf.SizeByID(inputs[j])
	})
	for i, id := range inputs {
		r.store.Place(s.gid(id), i%r.cfg.Cluster.Nodes)
	}

	// Seed the ready queue with dependency-free tasks in generation order.
	for _, t := range wf.Graph.Tasks() {
		s.remaining[t.ID] = len(t.Deps())
	}
	for _, t := range wf.Graph.Tasks() {
		if s.remaining[t.ID] == 0 {
			r.enqueue(s, t)
		}
	}
	return s
}

// finishSession runs once when a session's last task completes: stamps
// the finish instant, fires the teardown callback with the session still
// intact, and stops the fault injector once nothing is left to run
// (pending fault events would otherwise keep the virtual clock alive
// forever).
func (r *simRun) finishSession(s *session) {
	if s.ended {
		return
	}
	s.ended = true
	s.finished = r.eng.Now()
	r.active--
	if s.onDone != nil {
		s.onDone(s)
	}
	if r.faults != nil && r.active == 0 && r.pendingSubmits == 0 {
		r.faults.Stop()
	}
}

// utilization returns the cluster's mean core and GPU busy fractions over
// the elapsed virtual time.
func (r *simRun) utilization() (core, gpu float64) {
	if r.eng.Now() <= 0 {
		return 0, 0
	}
	var coreBusy, gpuBusy float64
	for _, n := range r.clu.Nodes {
		coreBusy += n.Cores.BusyTime()
		gpuBusy += n.GPUs.BusyTime()
	}
	core = coreBusy / (float64(r.cfg.Cluster.TotalCores()) * r.eng.Now())
	if r.cfg.Cluster.TotalGPUs() > 0 {
		gpu = gpuBusy / (float64(r.cfg.Cluster.TotalGPUs()) * r.eng.Now())
	}
	return core, gpu
}

// attemptOutcome classifies how one placed attempt of a task ended.
type attemptOutcome int

const (
	// attemptDone: the attempt ran the full Figure 4 pipeline.
	attemptDone attemptOutcome = iota
	// attemptCrashed: the node crashed under the attempt; re-queue now.
	attemptCrashed
	// attemptFailed: injected transient failure; retry with backoff.
	attemptFailed
	// attemptLostInput: an input block is gone; the attempt registered
	// itself with the producer's waiters and lineage recovery is under
	// way.
	attemptLostInput
)

// attemptRecs buffers one attempt's stage records so an aborted attempt
// leaves a single StageRecovery span instead of a torn half-pipeline.
// Fault-free runs bypass the buffer and append records directly.
type attemptRecs struct {
	recs [metrics.NumStages]metrics.Record
	n    int
}

// acquireSlot returns the lowest free core index on a node, so repeated
// waves reuse the same physical cores — required for the paper's per-core
// (de)serialization aggregation to be meaningful. The free set is a
// bitmap, so the "lowest free" scan is a trailing-zeros instruction per
// 64 cores instead of a linear walk over booleans.
func (r *simRun) acquireSlot(node int) int {
	for w, word := range r.slots[node] {
		if word != 0 {
			bit := bits.TrailingZeros64(word)
			r.slots[node][w] = word &^ (1 << bit)
			return w*64 + bit
		}
	}
	panic(fmt.Sprintf("runtime: no free core slot on node %d despite server grant", node))
}

// releaseSlot returns a core to the node's free set.
func (r *simRun) releaseSlot(node, slot int) {
	r.slots[node][slot/64] |= 1 << (slot % 64)
}

// grabRemaining returns zeroed dependency counters for one session. The
// arena's recycled buffer serves the single-session path only: co-resident
// multi-tenant sessions each need their own backing, so any session after
// the first (and every session under a fair-share gate) allocates.
func (r *simRun) grabRemaining(n int) []int {
	if a := r.cfg.Arena; a != nil && r.multi == nil && len(r.sessions) == 0 {
		return a.grabRemaining(n)
	}
	return make([]int, n)
}

// borrowInputs returns a zero-length DataLoc slice with capacity n, carved
// from a slab so each ready task's input list is not an individual
// allocation. Slices are never returned: the total input-list footprint of
// a run is a few entries per task, so the slabs cost tens of kilobytes
// where per-task allocations cost one heap object each. Slabs grow
// geometrically so a million-task run fills O(log n) of them, and the
// biggest one is what an arena retains for the next trial.
func (r *simRun) borrowInputs(n int) []sched.DataLoc {
	if cap(r.inputSlab)-len(r.inputSlab) < n {
		c := 2 * cap(r.inputSlab)
		if c < 1024 {
			c = 1024
		}
		if c < n {
			c = n
		}
		slab := make([]sched.DataLoc, 0, c)
		if a := r.cfg.Arena; a != nil && cap(slab) > cap(a.inputs) {
			a.inputs = slab
		}
		r.inputSlab = slab
	}
	k := len(r.inputSlab)
	s := r.inputSlab[k : k : k+n]
	r.inputSlab = r.inputSlab[:k+n]
	return s
}

// enqueue registers a ready task and files a dispatch request with the
// master. The request is a zero-delay engine event — it takes the schedule
// position the dispatch process's start node used to occupy, so dispatch
// order is unchanged — and no process exists until the master grants the
// request (grantNext). The enqueue instant rides with the ref so queue
// disciplines that reorder dispatch still attribute the correct wait.
//
// In multi-tenant mode the tenant's admission quota is enforced here, not
// at the grant: a ref over quota parks in the tenant's overflow queue and
// files no request, preserving the one-request-per-queued-ref invariant
// the dispatch gate panics on. Re-enqueues of an admitted task (retries,
// crash re-queues, lineage waiters) bypass the quota — the task already
// holds its unit.
func (r *simRun) enqueue(s *session, t *dag.Task) {
	if r.failErr != nil {
		return // fatal failure: the run is draining, nothing new starts
	}
	ref := sched.TaskRef{
		ID: t.ID, Name: t.Name, Enqueued: r.eng.Now(),
		Tenant: s.tenant, Session: s.idx,
	}
	// Lookahead policies read precomputed tables off the ref; stamping is
	// a slice index, so the enqueue path stays allocation-free.
	if s.ranks != nil {
		ref.Rank = s.ranks[t.ID]
	}
	if s.costs != nil {
		ref.Cost = s.costs[t.ID]
	}
	nReads := 0
	for _, p := range t.Params {
		if p.Reads() {
			nReads++
		}
	}
	if nReads > 0 {
		ids := t.DataIDs()
		ref.Inputs = r.borrowInputs(nReads)
		for i, p := range t.Params {
			if p.Reads() {
				id := ids[i]
				ref.Inputs = append(ref.Inputs,
					sched.DataLoc{ID: s.gid(id), Bytes: s.wf.SizeByID(id)})
			}
		}
	}
	if s.inFlight != nil {
		s.inFlight[t.ID] = true
	}
	if m := r.multi; m != nil && !s.counted[t.ID] {
		if q := m.quota[s.tenant]; q > 0 && m.occupancy[s.tenant] >= q {
			m.overflow[s.tenant].Push(ref)
			return
		}
		s.counted[t.ID] = true
		m.occupancy[s.tenant]++
	}
	r.queue.Push(ref)
	r.eng.Schedule(0, r.requestFn)
}

// releaseQuota returns a completed task's admission unit to its tenant
// and admits parked refs while the tenant is back under quota. Keyed on
// counted, not on completion alone, so a lineage re-execution of an
// already-completed producer balances its own re-admission exactly.
func (r *simRun) releaseQuota(s *session, taskID int) {
	m := r.multi
	if m == nil || !s.counted[taskID] {
		return
	}
	s.counted[taskID] = false
	m.occupancy[s.tenant]--
	q := m.quota[s.tenant]
	for m.overflow[s.tenant].Len() > 0 && (q <= 0 || m.occupancy[s.tenant] < q) {
		ref, _ := m.overflow[s.tenant].PopFront()
		os := r.sessions[ref.Session]
		os.counted[ref.ID] = true
		m.occupancy[s.tenant]++
		r.queue.Push(ref)
		r.eng.Schedule(0, r.requestFn)
	}
}

// rec appends one stage record, into buf when the attempt is buffered
// (fault runs) or straight to the session's collector (fault-free hot
// path). Explicit arguments instead of a per-task closure keep the record
// path allocation-free.
func (r *simRun) rec(s *session, buf *attemptRecs, task *dag.Task, nodeID, core int,
	dev costmodel.DeviceKind, stage metrics.Stage, start, end float64) {
	rec := metrics.Record{
		TaskID: task.ID, TaskName: task.Name, Level: task.Level,
		Node: nodeID, Core: core, Device: dev.String(),
		Stage: stage, Start: start, End: end,
	}
	if buf != nil {
		buf.recs[buf.n] = rec
		buf.n++
		return
	}
	s.sink.Observe(rec)
}

// grantNext runs engine-side at the instant the master is granted to the
// oldest outstanding dispatch request: it pops the policy's pick from the
// ready queue — the task actually dispatched is whichever the policy
// selects at this exact instant — and schedules the task process to start
// once the policy's decision time has elapsed. The master stays held until
// that process places the task and calls End.
//
// In multi-tenant mode the fair-share gate picks the tenant first, then
// the policy picks within that tenant's refs; single-workflow runs take
// the policy's pick directly, byte-identical to the pre-tenant runtime.
func (r *simRun) grantNext() {
	// The decision is priced at the queue depth the master actually
	// scanned: the per-rank term of the overhead model sees the ready set
	// as it was before the pick.
	qlen := r.queue.Len()
	var ref sched.TaskRef
	var ok bool
	if m := r.multi; m != nil {
		ref, ok = r.scheduler.NextFor(&r.queue, m.pick(&r.queue))
	} else {
		ref, ok = r.scheduler.Next(&r.queue)
	}
	if !ok {
		// Cannot happen: one request per queued ref.
		panic("runtime: ready queue empty at dispatch")
	}
	r.granted.Push(ref)
	r.eng.GoAfter("task", r.scheduler.Overhead(r.params, qlen, r.cfg.Cluster.Nodes), r.taskProcFn)
}

// taskProc is the full lifecycle of one dispatched task, starting at the
// instant its scheduling decision completes: placement on the master, the
// Figure 4 pipeline on the placed node, then completion bookkeeping or —
// under fault injection — the recovery policy for the attempt's outcome.
func (r *simRun) taskProc(p *sim.Proc) {
	// --- Scheduling epilogue: the grant and decision delay already
	// happened engine-side (grantNext); this process starts with the
	// master held, places the task, and releases the master.
	ref, _ := r.granted.PopFront()
	s := r.sessions[ref.Session]
	nodeID := r.scheduler.Place(ref, &r.view)
	if nodeID < 0 && r.faults != nil && !r.faults.AnyUp() {
		// Every node is down. Park the ref; the next repair re-files it
		// (onNodeRepair) with its original enqueue instant intact.
		r.stats.Stalls++
		r.stalled.Push(ref)
		r.clu.Master.End()
		return
	}
	r.clu.Master.End()
	if nodeID < 0 || nodeID >= r.cfg.Cluster.Nodes {
		panic(fmt.Sprintf("runtime: scheduler placed task %d on invalid node %d", ref.ID, nodeID))
	}
	r.load[nodeID]++

	task := s.wf.Graph.Task(ref.ID)
	switch r.runAttempt(p, s, ref, task, nodeID) {
	case attemptDone:
		if r.faults != nil {
			// Transient-failure exhaustion counts consecutive failures: a
			// success (including lineage re-execution) proves the task can
			// make progress and resets its budget.
			s.attempts[task.ID] = 0
		}
		r.completeTask(s, task)
	case attemptCrashed:
		r.stats.CrashRequeues++
		r.enqueue(s, task)
	case attemptFailed:
		r.stats.TransientFailures++
		s.attempts[task.ID]++
		n := int(s.attempts[task.ID])
		if n >= r.fcfg.MaxAttempts {
			// Terminal failure path: the run aborts right after.
			//wfsimlint:allow hotalloc
			r.failErr = fmt.Errorf("runtime: task %d (%s) exhausted %d attempts under transient failures",
				task.ID, task.Name, n)
			r.faults.Stop()
			return
		}
		r.stats.Retries++
		r.eng.Schedule(r.fcfg.Backoff(n), func() { r.enqueue(s, task) })
	case attemptLostInput:
		// The attempt registered itself as a lineage waiter; the
		// producer's (re-)completion re-enqueues it.
	}
}

// runAttempt executes one placed attempt of a task: the Figure 4 pipeline
// under the fault model. Under injection it checks the node's restart
// epoch at stage boundaries — the COMPSs master notices worker loss when a
// dispatched task's result is due, not preemptively — and aborts the
// attempt on a mismatch, releasing every held resource.
func (r *simRun) runAttempt(p *sim.Proc, s *session, ref sched.TaskRef, task *dag.Task, nodeID int) attemptOutcome {
	prof := s.wf.Spec(task).Profile
	dev := taskDevice(prof, r.cfg.Device)
	node := r.clu.Node(nodeID)
	speed := 1.0 // CPU-side compute-rate multiplier for this node
	if r.cfg.NodeSpeed != nil {
		speed = r.cfg.NodeSpeed[nodeID]
	}

	inj := r.faults
	var buf *attemptRecs
	var epoch uint64
	failNow, failFrac := false, 0.0
	if inj != nil {
		buf = &attemptRecs{}
		epoch = inj.Epoch(nodeID)
		speed *= inj.Speed(nodeID)
		failNow, failFrac = inj.AttemptFails()
	}

	r.rec(s, buf, task, nodeID, -1, dev, metrics.StageSched, ref.Enqueued, p.Now())

	// --- Occupy a worker core for the whole task (COMPSs binds the task
	// to a core; GPU tasks keep their host core while the kernel runs).
	// A GPU-accelerated task additionally reserves its GPU device for its
	// entire lifetime (a COMPSs {CPU:1, GPU:1} constraint: GPU worker
	// deployments expose one executor slot per device). This is why "we
	// can execute in parallel a maximum of 128 CPU-based tasks and only
	// 32 GPU-accelerated tasks" (§3.3) — the task-level-parallelism
	// asymmetry at the heart of the paper's parallel-task results.
	node.Cores.Acquire(p)
	slot := r.acquireSlot(nodeID)
	core := nodeID*r.cfg.Cluster.CoresPerNode + slot
	if dev == costmodel.GPU {
		node.GPUs.Acquire(p)
	}
	bodyStart := p.Now()
	if inj != nil && inj.Epoch(nodeID) != epoch {
		r.abortAttempt(p, s, task, nodeID, slot, dev, bodyStart)
		return attemptCrashed
	}

	// --- Deserialization: storage reads of every input, then CPU decode.
	dStart := p.Now()
	var readBytes float64
	for _, in := range ref.Inputs {
		if _, ok := r.store.Read(p, node, in.ID, in.Bytes); !ok {
			if inj == nil {
				r.panicUnknownRead(task, in.ID)
			}
			if prod := r.producerOf(s, task, in.ID); prod >= 0 {
				// The block was produced by an upstream task and died
				// with a local disk: lineage recovery re-executes the
				// producer; this attempt aborts and waits for it.
				r.addWaiter(s, prod, task.ID)
				r.abortAttempt(p, s, task, nodeID, slot, dev, bodyStart)
				return attemptLostInput
			}
			// A workflow input is durable at its archival source:
			// re-stage it onto this node through the network.
			node.NIC.Transfer(p, in.Bytes)
			r.clu.Shared.Transfer(p, in.Bytes)
			r.store.Place(in.ID, nodeID)
			r.stats.InputRestages++
		}
		readBytes += in.Bytes
	}
	if readBytes > 0 {
		p.Wait(readBytes / r.params.DeserRate / speed)
	}
	r.rec(s, buf, task, nodeID, core, dev, metrics.StageDeser, dStart, p.Now())
	if inj != nil && inj.Epoch(nodeID) != epoch {
		r.abortAttempt(p, s, task, nodeID, slot, dev, bodyStart)
		return attemptCrashed
	}

	// --- User code.
	switch dev {
	case costmodel.GPU:
		// Host-to-device transfer on the node's contended PCIe bus.
		gStart := p.Now()
		if prof.BytesIn > 0 {
			node.PCIe.Transfer(p, prof.BytesIn)
		}
		r.rec(s, buf, task, nodeID, core, dev, metrics.StageCommIn, gStart, p.Now())

		kStart := p.Now()
		kt := r.params.ParallelTime(prof, costmodel.GPU)
		if failNow {
			// The injected failure strikes partway through the kernel.
			p.Wait(kt * failFrac)
			r.abortAttempt(p, s, task, nodeID, slot, dev, bodyStart)
			return attemptFailed
		}
		p.Wait(kt)
		r.rec(s, buf, task, nodeID, core, dev, metrics.StageParallel, kStart, p.Now())

		oStart := p.Now()
		if prof.BytesOut > 0 {
			node.PCIe.Transfer(p, prof.BytesOut)
		}
		r.rec(s, buf, task, nodeID, core, dev, metrics.StageCommOut, oStart, p.Now())
	case costmodel.CPU:
		kStart := p.Now()
		var kt float64
		if prof.ParallelOps > 0 {
			kt = r.params.ParallelTime(prof, costmodel.CPU)
			// A task alone at its DAG level has no task-level
			// parallelism to protect: its vectorized kernel spreads over
			// the node's idle cores (NumPy/BLAS threading), which is why
			// the paper's parallel-task time *drops* at the maximum
			// block size (§5.3) instead of growing further.
			if s.levelWidth[task.Level] == 1 {
				kt /= r.params.SoloThreadSpeedup
			}
			kt /= speed
		}
		if failNow {
			p.Wait(kt * failFrac)
			r.abortAttempt(p, s, task, nodeID, slot, dev, bodyStart)
			return attemptFailed
		}
		if kt > 0 {
			p.Wait(kt)
		}
		r.rec(s, buf, task, nodeID, core, dev, metrics.StageParallel, kStart, p.Now())
	}

	// Serial fraction always runs on the host core (§3.3).
	sStart := p.Now()
	if prof.SerialOps > 0 {
		p.Wait(r.params.SerialTime(prof) / speed)
	}
	r.rec(s, buf, task, nodeID, core, dev, metrics.StageSerial, sStart, p.Now())
	if inj != nil && inj.Epoch(nodeID) != epoch {
		r.abortAttempt(p, s, task, nodeID, slot, dev, bodyStart)
		return attemptCrashed
	}

	// --- Serialization: CPU encode, then storage writes of every output.
	wStart := p.Now()
	ids := task.DataIDs()
	var wroteBytes float64
	for i, prm := range task.Params {
		if prm.Writes() {
			wroteBytes += s.wf.SizeByID(ids[i])
		}
	}
	if wroteBytes > 0 {
		p.Wait(wroteBytes / r.params.SerRate / speed)
	}
	for i, prm := range task.Params {
		if prm.Writes() {
			id := ids[i]
			r.store.Write(p, node, s.gid(id), s.wf.SizeByID(id))
		}
	}
	r.rec(s, buf, task, nodeID, core, dev, metrics.StageSer, wStart, p.Now())
	if inj != nil && inj.Epoch(nodeID) != epoch {
		// The node died while the attempt was writing; local copies of
		// its outputs died with it (shared storage keeps them — Drop is
		// a no-op there).
		for i, prm := range task.Params {
			if prm.Writes() {
				r.store.Drop(s.gid(ids[i]))
			}
		}
		r.abortAttempt(p, s, task, nodeID, slot, dev, bodyStart)
		return attemptCrashed
	}

	if dev == costmodel.GPU {
		node.GPUs.Release()
	}
	r.releaseSlot(nodeID, slot)
	node.Cores.Release()
	r.load[nodeID]--
	if buf != nil {
		for i := 0; i < buf.n; i++ {
			s.sink.Observe(buf.recs[i])
		}
		if s.doneTask[task.ID] {
			// A lineage re-execution of an already-completed producer.
			r.stats.RecoveryWork += p.Now() - bodyStart
		}
	}
	return attemptDone
}

// abortAttempt releases everything a doomed attempt holds and records its
// wasted span as a single StageRecovery record — the core time the fault
// burned, visible in traces and Gantt timelines as 'x'.
func (r *simRun) abortAttempt(p *sim.Proc, s *session, task *dag.Task, nodeID, slot int,
	dev costmodel.DeviceKind, bodyStart float64) {
	node := r.clu.Node(nodeID)
	if dev == costmodel.GPU {
		node.GPUs.Release()
	}
	r.releaseSlot(nodeID, slot)
	node.Cores.Release()
	r.load[nodeID]--
	r.stats.WastedWork += p.Now() - bodyStart
	s.sink.Observe(metrics.Record{
		TaskID: task.ID, TaskName: task.Name, Level: task.Level,
		Node: nodeID, Core: nodeID*r.cfg.Cluster.CoresPerNode + slot, Device: dev.String(),
		Stage: metrics.StageRecovery, Start: bodyStart, End: p.Now(),
	})
}

// panicUnknownRead is the fault-free-path assertion for a missed block
// read: with no injection, every input must have been placed or written
// before its consumer dispatched, so a miss is a placement bug.
func (r *simRun) panicUnknownRead(task *dag.Task, id int32) {
	panic(fmt.Sprintf("runtime: task %d (%s) read unknown block %d with fault injection off — block placement bug",
		task.ID, task.Name, id))
}

// producerOf returns the dependency of task that writes datum id (given
// as a global ID), or -1 when no dependency produces it (the datum is a
// workflow input). The scan is the lineage walk: dependencies hold every
// producer the DAG's last-writer edge inference linked to this task.
func (r *simRun) producerOf(s *session, task *dag.Task, id int32) int {
	local := id - s.dataBase
	for _, dep := range task.Deps() {
		dt := s.wf.Graph.Task(dep)
		ids := dt.DataIDs()
		for i, prm := range dt.Params {
			if prm.Writes() && ids[i] == local {
				return dep
			}
		}
	}
	return -1
}

// addWaiter parks a task on a producer's re-execution and submits the
// producer if it is not already queued or running.
func (r *simRun) addWaiter(s *session, prod, waiter int) {
	s.waiters[prod] = append(s.waiters[prod], int32(waiter))
	if !s.inFlight[prod] {
		r.stats.LineageRecomputes++
		r.enqueue(s, s.wf.Graph.Task(prod))
	}
}

// completeTask runs the completion bookkeeping for a successful attempt:
// successor release on first completion, lineage-waiter wake-up on every
// completion, quota return and session teardown when the workflow's last
// task finishes.
func (r *simRun) completeTask(s *session, task *dag.Task) {
	r.releaseQuota(s, task.ID)
	if r.faults == nil {
		s.done++
		for _, succ := range task.Succs() {
			s.remaining[succ]--
			if s.remaining[succ] == 0 {
				r.enqueue(s, s.wf.Graph.Task(succ))
			}
		}
		if s.done == s.wf.Graph.Len() {
			r.finishSession(s)
		}
		return
	}
	s.inFlight[task.ID] = false
	if !s.doneTask[task.ID] {
		s.doneTask[task.ID] = true
		s.done++
		for _, succ := range task.Succs() {
			s.remaining[succ]--
			if s.remaining[succ] == 0 {
				r.enqueue(s, s.wf.Graph.Task(succ))
			}
		}
	}
	if ws := s.waiters[task.ID]; len(ws) > 0 {
		s.waiters[task.ID] = ws[:0]
		for _, w := range ws {
			r.enqueue(s, s.wf.Graph.Task(int(w)))
		}
	}
	if s.done == s.wf.Graph.Len() {
		r.finishSession(s)
	}
}

// onNodeCrash fires engine-side at a crash instant: whatever the node's
// local disk held is gone. Tasks running on the node notice at their next
// stage boundary (epoch mismatch) and re-queue themselves.
func (r *simRun) onNodeCrash(node int) {
	r.stats.Crashes++
	r.stats.BlocksLost += r.store.Invalidate(node)
}

// onNodeRepair fires engine-side when a node rejoins: refs that stalled
// with the whole cluster down re-enter the ready queue.
func (r *simRun) onNodeRepair(int) {
	for r.stalled.Len() > 0 {
		ref, _ := r.stalled.PopFront()
		r.queue.Push(ref)
		r.eng.Schedule(0, r.requestFn)
	}
}

// ErrOOM reports whether err is a memory-capacity error (either kind).
func ErrOOM(err error) bool {
	return errors.Is(err, costmodel.ErrGPUOOM) || errors.Is(err, costmodel.ErrHostOOM)
}
