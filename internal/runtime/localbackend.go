// The local backend executes real kernels on the host and reports real
// elapsed time, so this file is wall-clock layer by design and exempt
// from the walltime determinism lint.
//
//wfsimlint:wallclock

package runtime

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"wfsim/internal/metrics"
)

// LocalConfig controls real (non-simulated) execution of a workflow on the
// host machine.
type LocalConfig struct {
	// Workers caps concurrent task execution; 0 means GOMAXPROCS.
	Workers int
}

// LocalResult is the outcome of a real execution.
type LocalResult struct {
	// Store holds every materialized datum after execution.
	Store *Store
	// Collector records wall-clock user-code spans per task.
	Collector *metrics.Collector
	// Elapsed is the wall-clock makespan.
	Elapsed time.Duration
}

// RunLocal executes the workflow's real kernels on a goroutine worker pool,
// respecting DAG dependencies. It is the correctness backend: examples and
// tests use it to verify that the same workflow definition that drives the
// simulator computes the right numbers.
func RunLocal(wf *Workflow, cfg LocalConfig) (*LocalResult, error) {
	if err := wf.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("workflow %s: %w", wf.Name, err)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	store := NewStore()
	for k, b := range wf.initial {
		store.Put(k, b)
	}
	collector := metrics.NewCollector()
	start := time.Now()

	var (
		mu        sync.Mutex
		wg        sync.WaitGroup
		firstErr  error
		remaining = make([]int, wf.Graph.Len())
	)
	sem := make(chan struct{}, workers)

	var launch func(id int)
	launch = func(id int) {
		defer wg.Done()
		sem <- struct{}{}
		t := wf.Graph.Task(id)
		spec := wf.Spec(t)
		t0 := time.Since(start).Seconds()
		var err error
		if spec.Exec != nil {
			err = spec.Exec(store)
		}
		t1 := time.Since(start).Seconds()
		<-sem

		collector.Add(metrics.Record{
			TaskID: t.ID, TaskName: t.Name, Level: t.Level,
			Device: "CPU", Stage: metrics.StageParallel, Start: t0, End: t1,
		})

		mu.Lock()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("task %d (%s): %w", t.ID, t.Name, err)
		}
		var ready []int
		if firstErr == nil {
			for _, s := range t.Succs() {
				remaining[s]--
				if remaining[s] == 0 {
					ready = append(ready, s)
				}
			}
		}
		mu.Unlock()
		for _, s := range ready {
			wg.Add(1)
			go launch(s)
		}
	}

	mu.Lock()
	for _, t := range wf.Graph.Tasks() {
		remaining[t.ID] = len(t.Deps())
	}
	var roots []int
	for _, t := range wf.Graph.Tasks() {
		if remaining[t.ID] == 0 {
			roots = append(roots, t.ID)
		}
	}
	mu.Unlock()
	for _, id := range roots {
		wg.Add(1)
		go launch(id)
	}
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if collector.Len() != wf.Graph.Len() {
		return nil, fmt.Errorf("workflow %s: %d of %d tasks ran (dependency stall after error?)",
			wf.Name, collector.Len(), wf.Graph.Len())
	}
	return &LocalResult{Store: store, Collector: collector, Elapsed: time.Since(start)}, nil
}
