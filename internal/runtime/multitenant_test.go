package runtime

import (
	"bytes"
	"strings"
	"testing"

	"wfsim/internal/cluster"
	"wfsim/internal/costmodel"
	"wfsim/internal/faults"
	"wfsim/internal/metrics"
	"wfsim/internal/sched"
	"wfsim/internal/storage"
)

func traceCSV(t *testing.T, c *metrics.Collector) string {
	t.Helper()
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestClusterSimSingleTenantMatchesRunSim pins that the multi-tenant path
// is a strict generalization: one tenant, one workflow arriving at 0,
// produces the exact trace RunSim produces, for every policy (NextFor
// restricted to the only tenant must equal Next).
func TestClusterSimSingleTenantMatchesRunSim(t *testing.T) {
	for _, pol := range sched.Policies() {
		cfg := SimConfig{Device: costmodel.GPU, Policy: pol, Storage: storage.Local, Seed: 7}
		ref, err := RunSim(gridWorkflow(4, 16, testProf), cfg)
		if err != nil {
			t.Fatalf("%v: RunSim: %v", pol, err)
		}
		cs, err := NewClusterSim(cfg, []TenantSpec{{}})
		if err != nil {
			t.Fatalf("%v: NewClusterSim: %v", pol, err)
		}
		var got *WorkflowResult
		if err := cs.Submit(0, gridWorkflow(4, 16, testProf), 0,
			func(r WorkflowResult) { got = &r }); err != nil {
			t.Fatalf("%v: Submit: %v", pol, err)
		}
		if err := cs.Run(); err != nil {
			t.Fatalf("%v: Run: %v", pol, err)
		}
		if got == nil {
			t.Fatalf("%v: completion callback never fired", pol)
		}
		if got.Finished != ref.Makespan {
			t.Errorf("%v: finished at %v, RunSim makespan %v", pol, got.Finished, ref.Makespan)
		}
		if a, b := traceCSV(t, got.Collector), traceCSV(t, ref.Collector); a != b {
			t.Errorf("%v: single-tenant ClusterSim trace diverges from RunSim", pol)
		}
	}
}

// runTwoTenants drives one seeded 2-tenant schedule: staggered arrivals of
// four workflows over a small cluster, returning the per-session traces
// (indexed by session) and the horizon.
func runTwoTenants(t *testing.T, fc faults.Config) ([]string, float64, FaultStats) {
	t.Helper()
	cfg := SimConfig{
		Cluster: cluster.Spec{Name: "mini", Nodes: 2, CoresPerNode: 4, GPUsPerNode: 2},
		Device:  costmodel.GPU, Policy: sched.Locality, Storage: storage.Local,
		Faults: fc,
	}
	cs, err := NewClusterSim(cfg, []TenantSpec{{Weight: 2}, {Weight: 1, Quota: 8}})
	if err != nil {
		t.Fatal(err)
	}
	traces := make([]string, 4)
	done := 0
	onDone := func(r WorkflowResult) {
		traces[r.Session] = traceCSV(t, r.Collector)
		done++
	}
	subs := []struct {
		tenant int
		wf     *Workflow
		at     float64
	}{
		{0, gridWorkflow(3, 8, testProf), 0},
		{1, fanWorkflow(24, testProf), 0.25},
		{0, fanWorkflow(16, testProf), 0.5},
		{1, chainWorkflow(6, testProf), 0.75},
	}
	for _, s := range subs {
		if err := cs.Submit(s.tenant, s.wf, s.at, onDone); err != nil {
			t.Fatal(err)
		}
	}
	if err := cs.Run(); err != nil {
		t.Fatal(err)
	}
	if done != len(subs) {
		t.Fatalf("%d of %d completion callbacks fired", done, len(subs))
	}
	return traces, cs.Now(), cs.FaultStats()
}

// TestClusterSimDeterministic is the acceptance check: a 2-tenant run on
// one shared cluster, same seed twice, produces byte-identical per-workflow
// traces — with fault injection off and on.
func TestClusterSimDeterministic(t *testing.T) {
	cases := []struct {
		name string
		fc   faults.Config
	}{
		{"fault-free", faults.Config{}},
		{"faulty", faults.Config{Seed: 3, NodeMTBF: 2.0, NodeMTTR: 0.3, TaskFailProb: 0.02}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr1, h1, st1 := runTwoTenants(t, c.fc)
			tr2, h2, st2 := runTwoTenants(t, c.fc)
			if h1 != h2 {
				t.Fatalf("horizons diverged: %v vs %v", h1, h2)
			}
			if st1 != st2 {
				t.Fatalf("fault stats diverged: %+v vs %+v", st1, st2)
			}
			for i := range tr1 {
				if tr1[i] != tr2[i] {
					t.Errorf("session %d trace diverged between identical runs", i)
				}
			}
			if c.name == "faulty" && st1.Crashes == 0 {
				t.Error("faulty case injected no crashes — schedule too mild to exercise recovery")
			}
		})
	}
}

// TestFairShareWeights pins the dispatch gate's weighted apportioning:
// with two identical backlogged workflows on a contended cluster, the
// heavier tenant finishes first, and flipping the weights flips the order.
func TestFairShareWeights(t *testing.T) {
	run := func(w0, w1 float64) (f0, f1 float64) {
		cfg := SimConfig{
			Cluster: cluster.Spec{Name: "tiny", Nodes: 1, CoresPerNode: 2},
			Device:  costmodel.CPU, Policy: sched.FIFO,
		}
		cs, err := NewClusterSim(cfg, []TenantSpec{{Weight: w0}, {Weight: w1}})
		if err != nil {
			t.Fatal(err)
		}
		fin := make([]float64, 2)
		onDone := func(r WorkflowResult) { fin[r.Tenant] = r.Finished }
		if err := cs.Submit(0, fanWorkflow(16, testProf), 0, onDone); err != nil {
			t.Fatal(err)
		}
		if err := cs.Submit(1, fanWorkflow(16, testProf), 0, onDone); err != nil {
			t.Fatal(err)
		}
		if err := cs.Run(); err != nil {
			t.Fatal(err)
		}
		return fin[0], fin[1]
	}
	f0, f1 := run(6, 1)
	if f0 >= f1 {
		t.Errorf("weight 6:1 — tenant 0 finished at %v, tenant 1 at %v; want tenant 0 first", f0, f1)
	}
	g0, g1 := run(1, 6)
	if g1 >= g0 {
		t.Errorf("weight 1:6 — tenant 1 finished at %v, tenant 0 at %v; want tenant 1 first", g1, g0)
	}
}

// TestAdmissionQuota pins quota semantics: a tenant with Quota 1 runs its
// independent tasks one at a time (response stretches accordingly), and
// every parked task is still admitted and completed.
func TestAdmissionQuota(t *testing.T) {
	run := func(quota int) float64 {
		cfg := SimConfig{Device: costmodel.CPU, Policy: sched.FIFO}
		cs, err := NewClusterSim(cfg, []TenantSpec{{Quota: quota}})
		if err != nil {
			t.Fatal(err)
		}
		var res WorkflowResult
		if err := cs.Submit(0, fanWorkflow(32, testProf), 0,
			func(r WorkflowResult) { res = r }); err != nil {
			t.Fatal(err)
		}
		if err := cs.Run(); err != nil {
			t.Fatal(err)
		}
		if res.Collector == nil || res.Tasks != 32 {
			t.Fatalf("incomplete result: %+v", res)
		}
		return res.Finished - res.Submitted
	}
	serialized, unlimited := run(1), run(0)
	// 32 independent tasks on 128 cores: quota 1 forces ~32 sequential
	// executions where unlimited runs them all in one wave.
	if serialized < 8*unlimited {
		t.Errorf("quota-1 response %v vs unlimited %v — quota did not serialize admission",
			serialized, unlimited)
	}
}

// TestClusterSimUsageErrors covers the API misuse surface.
func TestClusterSimUsageErrors(t *testing.T) {
	if _, err := NewClusterSim(SimConfig{}, nil); err == nil {
		t.Error("NewClusterSim with no tenants accepted")
	}
	cs, err := NewClusterSim(SimConfig{}, []TenantSpec{{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Submit(1, fanWorkflow(1, testProf), 0, nil); err == nil {
		t.Error("Submit to unknown tenant accepted")
	}
	if err := cs.Submit(0, fanWorkflow(1, testProf), -1, nil); err == nil {
		t.Error("Submit at negative instant accepted")
	}
	if err := cs.Run(); err == nil {
		t.Error("Run with no submissions accepted")
	}
	cs2, _ := NewClusterSim(SimConfig{}, []TenantSpec{{}})
	if err := cs2.Submit(0, fanWorkflow(1, testProf), 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := cs2.Run(); err != nil {
		t.Fatal(err)
	}
	if err := cs2.Submit(0, fanWorkflow(1, testProf), 0, nil); err == nil {
		t.Error("Submit after Run accepted")
	}
	if err := cs2.Run(); err == nil {
		t.Error("second Run accepted")
	}
}

// TestSimConfigValidate covers the explicit-rejection satellite: invalid
// cluster shapes and out-of-range fault rates error out instead of being
// silently patched or ignored.
func TestSimConfigValidate(t *testing.T) {
	ok := fanWorkflow(1, testProf)
	cases := []struct {
		name string
		cfg  SimConfig
		want string
	}{
		{"negative nodes", SimConfig{Cluster: cluster.Spec{Nodes: -1, CoresPerNode: 16}}, "cluster"},
		{"partial spec", SimConfig{Cluster: cluster.Spec{CoresPerNode: 16}}, "cluster"},
		{"zero cores", SimConfig{Cluster: cluster.Spec{Nodes: 4}}, "cluster"},
		{"negative MTBF", SimConfig{Faults: faults.Config{NodeMTBF: -1}}, "negative time constant"},
		{"fail prob over 1", SimConfig{Faults: faults.Config{TaskFailProb: 1.5}}, "TaskFailProb"},
		{"negative backoff", SimConfig{Faults: faults.Config{RetryBackoff: -0.1}}, "RetryBackoff"},
		{"bad node speed", SimConfig{NodeSpeed: []float64{1, 0, 1}}, "NodeSpeed"},
	}
	for _, c := range cases {
		_, err := RunSim(ok, c.cfg)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	// The zero config stays legal: defaults still apply.
	if _, err := RunSim(ok, SimConfig{}); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}
