package runtime

import (
	"fmt"
	"math"
	"testing"

	"wfsim/internal/cluster"
	"wfsim/internal/costmodel"
	"wfsim/internal/dag"
	"wfsim/internal/dataset"
	"wfsim/internal/metrics"
	"wfsim/internal/sched"
	"wfsim/internal/storage"
)

// chainWorkflow builds a linear chain a -> b -> c ... of n tasks over one
// datum, each with the given profile.
func chainWorkflow(n int, prof costmodel.Profile) *Workflow {
	wf := NewWorkflow("chain")
	wf.SetSize("x", 1e6)
	wf.AddTask("init", TaskSpec{Profile: prof}, dag.Param{Data: "x", Dir: dag.Out})
	for i := 1; i < n; i++ {
		wf.AddTask("step", TaskSpec{Profile: prof}, dag.Param{Data: "x", Dir: dag.InOut})
	}
	return wf
}

// fanWorkflow builds n independent tasks each reading a shared input and
// writing its own output.
func fanWorkflow(n int, prof costmodel.Profile) *Workflow {
	wf := NewWorkflow("fan")
	wf.SetSize("in", 1e6)
	for i := 0; i < n; i++ {
		out := fmt.Sprintf("out%d", i)
		wf.SetSize(out, 1e6)
		wf.AddTask("work", TaskSpec{Profile: prof},
			dag.Param{Data: "in", Dir: dag.In},
			dag.Param{Data: out, Dir: dag.Out})
	}
	return wf
}

var testProf = costmodel.Profile{
	Kernel:      costmodel.KernelGeneric,
	SerialOps:   1e6,
	ParallelOps: 1e9,
	Threads:     1e6,
	BytesIn:     1e6,
	BytesOut:    1e6,
	// Device/host footprints well within limits.
	DeviceMemBytes: 1e6,
	HostMemBytes:   1e6,
}

func TestSimChainSerializes(t *testing.T) {
	wf := chainWorkflow(5, testProf)
	res, err := RunSim(wf, SimConfig{Device: costmodel.CPU})
	if err != nil {
		t.Fatal(err)
	}
	if res.Collector.Len() == 0 {
		t.Fatal("no records collected")
	}
	// A 5-task chain has 5 levels; level spans must not overlap in a way
	// that violates dependencies: each level starts at or after the
	// previous level's user code ends.
	if got := len(res.Collector.Levels()); got != 5 {
		t.Fatalf("levels = %d, want 5", got)
	}
	if res.SchedDecisions != 5 {
		t.Fatalf("decisions = %d, want 5", res.SchedDecisions)
	}
}

func TestSimFanScalesOut(t *testing.T) {
	// 128 independent tasks on 128 cores must take far less than 128x a
	// single task's time, and more than 1x.
	prof := testProf
	solo, err := RunSim(fanWorkflow(1, prof), SimConfig{Device: costmodel.CPU})
	if err != nil {
		t.Fatal(err)
	}
	many, err := RunSim(fanWorkflow(128, prof), SimConfig{Device: costmodel.CPU})
	if err != nil {
		t.Fatal(err)
	}
	if many.Makespan > solo.Makespan*20 {
		t.Fatalf("128-task fan took %vx a single task: no task parallelism", many.Makespan/solo.Makespan)
	}
	if many.Makespan < solo.Makespan {
		t.Fatalf("fan faster than single task: %v < %v", many.Makespan, solo.Makespan)
	}
	if many.CoreUtilization <= solo.CoreUtilization {
		t.Fatal("utilization did not increase with task parallelism")
	}
}

func TestSimGPUTaskParallelismLimit(t *testing.T) {
	// GPU-accelerated fan of 128 tasks can only use 32 GPUs: its kernel
	// stage concurrency is bounded, so with a kernel-dominated profile the
	// GPU run must be slower than 32-way-parallel lower bound but not
	// serialized.
	prof := testProf
	prof.ParallelOps = 5e10 // kernel-dominated
	cpu, err := RunSim(fanWorkflow(128, prof), SimConfig{Device: costmodel.CPU})
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := RunSim(fanWorkflow(128, prof), SimConfig{Device: costmodel.GPU})
	if err != nil {
		t.Fatal(err)
	}
	// Kernel time CPU: 5e10/2e9 = 25s; 128 tasks on 128 cores ≈ 25s.
	// GPU: occ(1e6/(1e6+5e6))=1/6 → 5e10/(3e10/6)=10s; 128 tasks on 32
	// GPUs ≈ 4 waves ≈ 40s. GPU should lose despite a faster kernel.
	if gpu.Makespan <= cpu.Makespan {
		t.Fatalf("GPU fan (%v) should be slower than CPU fan (%v): task parallelism 32 vs 128",
			gpu.Makespan, cpu.Makespan)
	}
}

func TestSimOOM(t *testing.T) {
	prof := testProf
	prof.DeviceMemBytes = 20e9 // exceeds the 12 GB GPU
	_, err := RunSim(fanWorkflow(2, prof), SimConfig{Device: costmodel.GPU})
	if !ErrOOM(err) {
		t.Fatalf("err = %v, want GPU OOM", err)
	}
	// The same workflow on CPU fits (host RAM is 128 GB).
	if _, err := RunSim(fanWorkflow(2, prof), SimConfig{Device: costmodel.CPU}); err != nil {
		t.Fatalf("CPU run failed: %v", err)
	}
	prof.HostMemBytes = 200e9
	_, err = RunSim(fanWorkflow(2, prof), SimConfig{Device: costmodel.CPU})
	if !ErrOOM(err) {
		t.Fatalf("err = %v, want host OOM", err)
	}
}

func TestSimDeterministic(t *testing.T) {
	run := func() float64 {
		res, err := RunSim(fanWorkflow(64, testProf), SimConfig{
			Device: costmodel.GPU, Storage: storage.Local, Policy: sched.Locality,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic makespans: %v vs %v", a, b)
	}
}

func TestSimStorageArchitectureMatters(t *testing.T) {
	// Same workflow, local vs shared storage: shared must be slower for an
	// I/O-heavy fan (the paper's local < shared finding).
	prof := testProf
	prof.SerialOps, prof.ParallelOps = 0, 1e6
	wf := func() *Workflow {
		w := NewWorkflow("io")
		for i := 0; i < 64; i++ {
			in, out := fmt.Sprintf("in%d", i), fmt.Sprintf("out%d", i)
			w.SetSize(in, 100e6)
			w.SetSize(out, 100e6)
			w.AddTask("io", TaskSpec{Profile: prof},
				dag.Param{Data: in, Dir: dag.In}, dag.Param{Data: out, Dir: dag.Out})
		}
		return w
	}
	local, err := RunSim(wf(), SimConfig{Storage: storage.Local})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := RunSim(wf(), SimConfig{Storage: storage.Shared})
	if err != nil {
		t.Fatal(err)
	}
	if shared.Makespan <= local.Makespan {
		t.Fatalf("shared (%v) should be slower than local (%v) for I/O-heavy load",
			shared.Makespan, local.Makespan)
	}
}

func TestSimSchedulerPoliciesRun(t *testing.T) {
	for _, pol := range sched.Policies() {
		res, err := RunSim(fanWorkflow(16, testProf), SimConfig{Policy: pol})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if res.Makespan <= 0 {
			t.Fatalf("%v: zero makespan", pol)
		}
	}
}

func TestSimStageAccounting(t *testing.T) {
	// Every task must log exactly one record of each relevant stage, with
	// non-negative durations and monotonically consistent bounds.
	res, err := RunSim(fanWorkflow(8, testProf), SimConfig{Device: costmodel.GPU})
	if err != nil {
		t.Fatal(err)
	}
	perTask := map[int]map[metrics.Stage]int{}
	for _, r := range res.Collector.Records() {
		if r.Duration() < 0 {
			t.Fatalf("negative duration: %+v", r)
		}
		if perTask[r.TaskID] == nil {
			perTask[r.TaskID] = map[metrics.Stage]int{}
		}
		perTask[r.TaskID][r.Stage]++
	}
	if len(perTask) != 8 {
		t.Fatalf("records for %d tasks, want 8", len(perTask))
	}
	for id, stages := range perTask {
		for _, st := range []metrics.Stage{
			metrics.StageSched, metrics.StageDeser, metrics.StageCommIn,
			metrics.StageParallel, metrics.StageSerial, metrics.StageCommOut, metrics.StageSer,
		} {
			if stages[st] != 1 {
				t.Fatalf("task %d: stage %v count = %d, want 1", id, st, stages[st])
			}
		}
	}
}

func TestSimSerialTaskStaysOnCPU(t *testing.T) {
	// A task with no parallel fraction must run on CPU even in GPU mode
	// (§3.3: serial tasks are assigned to CPUs).
	prof := testProf
	prof.ParallelOps = 0
	wf := fanWorkflow(4, prof)
	res, err := RunSim(wf, SimConfig{Device: costmodel.GPU})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Collector.Records() {
		if r.Device != "CPU" {
			t.Fatalf("serial task recorded on %s", r.Device)
		}
	}
}

func TestWorkflowValidateMissingSize(t *testing.T) {
	wf := NewWorkflow("bad")
	wf.AddTask("t", TaskSpec{}, dag.Param{Data: "unsized", Dir: dag.Out})
	if err := wf.Validate(); err == nil {
		t.Fatal("missing size not reported")
	}
}

func TestInputKeys(t *testing.T) {
	wf := NewWorkflow("io")
	wf.SetSize("a", 1)
	wf.SetSize("b", 1)
	wf.SetSize("c", 1)
	wf.AddTask("t1", TaskSpec{}, dag.Param{Data: "a", Dir: dag.In}, dag.Param{Data: "b", Dir: dag.Out})
	wf.AddTask("t2", TaskSpec{}, dag.Param{Data: "b", Dir: dag.In}, dag.Param{Data: "c", Dir: dag.Out})
	keys := wf.InputKeys()
	if len(keys) != 1 || keys[0] != "a" {
		t.Fatalf("input keys = %v, want [a]", keys)
	}
}

func TestRunLocalComputesAndRespectsDeps(t *testing.T) {
	// Chain of increments over a 1x1 block: final value must equal chain
	// length, proving both execution and ordering.
	wf := NewWorkflow("inc")
	b := dataset.NewBlock(dataset.BlockID{}, 1, 1)
	wf.SetInput("x", b)
	n := 20
	for i := 0; i < n; i++ {
		wf.AddTask("inc", TaskSpec{
			Exec: func(s *Store) error {
				blk := s.MustGet("x")
				blk.Set(0, 0, blk.At(0, 0)+1)
				return nil
			},
		}, dag.Param{Data: "x", Dir: dag.InOut})
	}
	res, err := RunLocal(wf, LocalConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Store.MustGet("x").At(0, 0); got != float64(n) {
		t.Fatalf("chain result = %v, want %d", got, n)
	}
	if res.Collector.Len() != n {
		t.Fatalf("records = %d, want %d", res.Collector.Len(), n)
	}
}

func TestRunLocalParallelFan(t *testing.T) {
	wf := NewWorkflow("fan")
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("o%d", i)
		wf.SetSize(key, 8)
		i := i
		wf.AddTask("mk", TaskSpec{
			Exec: func(s *Store) error {
				b := dataset.NewBlock(dataset.BlockID{Row: int64(i)}, 1, 1)
				b.Set(0, 0, float64(i)*2)
				s.Put(key, b)
				return nil
			},
		}, dag.Param{Data: key, Dir: dag.Out})
	}
	res, err := RunLocal(wf, LocalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if got := res.Store.MustGet(fmt.Sprintf("o%d", i)).At(0, 0); got != float64(i)*2 {
			t.Fatalf("o%d = %v, want %v", i, got, float64(i)*2)
		}
	}
}

func TestRunLocalErrorPropagates(t *testing.T) {
	wf := NewWorkflow("err")
	wf.SetSize("x", 1)
	wf.AddTask("boom", TaskSpec{
		Exec: func(s *Store) error { return fmt.Errorf("kaput") },
	}, dag.Param{Data: "x", Dir: dag.Out})
	wf.AddTask("never", TaskSpec{
		Exec: func(s *Store) error { return nil },
	}, dag.Param{Data: "x", Dir: dag.In})
	if _, err := RunLocal(wf, LocalConfig{}); err == nil {
		t.Fatal("error not propagated")
	}
}

func TestSimSingleResourceCluster(t *testing.T) {
	// The Figure 1 "single task" configuration: 1 node, 1 core, 1 GPU.
	spec := cluster.Spec{Name: "single", Nodes: 1, CoresPerNode: 1, GPUsPerNode: 1}
	res, err := RunSim(fanWorkflow(3, testProf), SimConfig{Cluster: spec, Device: costmodel.GPU})
	if err != nil {
		t.Fatal(err)
	}
	// With one core, the 3 tasks fully serialize: utilization ≈ 1 aside
	// from scheduling gaps.
	if res.CoreUtilization < 0.8 {
		t.Fatalf("single-core utilization = %v, want ≈1", res.CoreUtilization)
	}
}

func TestSimUserCodeMatchesAnalytic(t *testing.T) {
	// For a single task on an idle cluster the simulated stage times must
	// equal the cost model's uncontended predictions.
	params := costmodel.DefaultParams()
	wf := fanWorkflow(1, testProf)
	res, err := RunSim(wf, SimConfig{Device: costmodel.GPU, Params: &params})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Collector
	wantPar := params.ParallelTime(testProf, costmodel.GPU)
	gotPar, _ := c.MeanStage("work", metrics.StageParallel)
	if math.Abs(gotPar-wantPar) > 1e-9 {
		t.Fatalf("parallel stage = %v, want %v", gotPar, wantPar)
	}
	wantSerial := params.SerialTime(testProf)
	gotSerial, _ := c.MeanStage("work", metrics.StageSerial)
	if math.Abs(gotSerial-wantSerial) > 1e-9 {
		t.Fatalf("serial stage = %v, want %v", gotSerial, wantSerial)
	}
	in, _ := c.MeanStage("work", metrics.StageCommIn)
	out, _ := c.MeanStage("work", metrics.StageCommOut)
	wantComm := params.CommTimeUncontended(testProf, costmodel.GPU)
	if math.Abs(in+out-wantComm) > 1e-9 {
		t.Fatalf("comm = %v, want %v", in+out, wantComm)
	}
}
