package runtime

import (
	"math"
	"testing"
	"testing/quick"

	"wfsim/internal/cluster"
	"wfsim/internal/costmodel"
	"wfsim/internal/dag"
	"wfsim/internal/metrics"
)

// TestSingleTaskMatchesCostModel is a property test: for random task
// profiles, a single-task workflow simulated on an idle cluster reproduces
// the cost model's stage times exactly (the simulator adds contention, not
// arithmetic).
func TestSingleTaskMatchesCostModel(t *testing.T) {
	params := costmodel.DefaultParams()
	f := func(serRaw, parRaw, thrRaw, bytesRaw uint32, gpuMode bool) bool {
		prof := costmodel.Profile{
			Kernel:         costmodel.Kernel(int(serRaw) % 5),
			SerialOps:      float64(serRaw%1_000_000) + 1,
			ParallelOps:    float64(parRaw%100_000_000) + 1,
			Threads:        float64(thrRaw%10_000_000) + 1,
			BytesIn:        float64(bytesRaw % 50_000_000),
			BytesOut:       float64(bytesRaw % 10_000_000),
			DeviceMemBytes: 1e6,
			HostMemBytes:   1e6,
		}
		wf := NewWorkflow("prop")
		wf.SetSize("in", 1e6)
		wf.SetSize("out", 1e6)
		wf.AddTask("t", TaskSpec{Profile: prof},
			dag.Param{Data: "in", Dir: dag.In},
			dag.Param{Data: "out", Dir: dag.Out})
		dev := costmodel.CPU
		if gpuMode {
			dev = costmodel.GPU
		}
		res, err := RunSim(wf, SimConfig{
			Device:  dev,
			Cluster: cluster.Spec{Name: "p", Nodes: 1, CoresPerNode: 2, GPUsPerNode: 1},
		})
		if err != nil {
			return false
		}
		c := res.Collector
		serial, _ := c.MeanStage("t", metrics.StageSerial)
		if math.Abs(serial-params.SerialTime(prof)) > 1e-9 {
			return false
		}
		par, _ := c.MeanStage("t", metrics.StageParallel)
		want := params.ParallelTime(prof, dev)
		if dev == costmodel.CPU {
			// A single task is alone at its level: node-wide threading.
			want /= params.SoloThreadSpeedup
		}
		if math.Abs(par-want) > 1e-9 {
			return false
		}
		in, _ := c.MeanStage("t", metrics.StageCommIn)
		out, _ := c.MeanStage("t", metrics.StageCommOut)
		if dev == costmodel.CPU {
			return in == 0 && out == 0
		}
		return math.Abs((in+out)-params.CommTimeUncontended(prof, costmodel.GPU)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
