package resultcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Stats are the store's cumulative counters. Hits/Misses count Get
// outcomes; CorruptDropped counts blobs discarded for failing validation
// (bad magic, wrong schema, truncation, checksum mismatch) — each such
// drop also counts as a miss, because the caller re-simulates.
type Stats struct {
	Hits           uint64 `json:"hits"`
	Misses         uint64 `json:"misses"`
	Puts           uint64 `json:"puts"`
	Evictions      uint64 `json:"evictions"`
	CorruptDropped uint64 `json:"corrupt_dropped"`
	Entries        int    `json:"entries"`
	Bytes          int64  `json:"bytes"`
}

// HitRate returns hits/(hits+misses), or 0 before any Get.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Store is a persistent content-addressed result cache: one blob file per
// key under dir/blobs plus a JSON index tracking sizes and LRU recency.
// All writes are atomic (temp file + rename), so a crash mid-write leaves
// either the old state or the new, never a torn blob; a torn or tampered
// blob that does land on disk is detected by checksum on read and treated
// as a miss. A Store is safe for concurrent use within one process;
// concurrent processes sharing a directory are safe for blobs (atomic
// renames) but may lose index recency updates, which only weakens LRU
// ordering, never correctness.
type Store struct {
	dir string
	// maxBytes bounds the total payload bytes; 0 means unbounded.
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*entry // blob name (hex) → entry
	clock   uint64            // logical LRU clock
	stats   Stats
	bytes   int64
}

type entry struct {
	Size    int64  `json:"size"`
	LastUse uint64 `json:"last_use"`
}

// index is the on-disk JSON form.
type index struct {
	Schema  int               `json:"schema"`
	Clock   uint64            `json:"clock"`
	Entries map[string]*entry `json:"entries"`
}

const (
	blobDir   = "blobs"
	indexFile = "index.json"
	blobMagic = "WFC1"
	// blobHeaderSize is magic(4) + schema(4) + payload length(8) +
	// payload SHA-256(32).
	blobHeaderSize = 4 + 4 + 8 + sha256.Size
)

// Open opens (creating if needed) a store rooted at dir. maxBytes bounds
// the cached payload volume (0 = unbounded); when an insert pushes past
// the bound, least-recently-used entries are evicted until it fits. An
// index recorded by an older schema version invalidates the whole cache:
// every blob is removed rather than served as stale physics.
func Open(dir string, maxBytes int64) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, blobDir), 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	s := &Store{dir: dir, maxBytes: maxBytes, entries: map[string]*entry{}}
	if err := s.loadIndex(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// loadIndex reads the index, falling back to a blob-directory scan when
// the index is missing or unreadable (the blobs are the ground truth; the
// index only accelerates startup and remembers recency).
func (s *Store) loadIndex() error {
	data, err := os.ReadFile(filepath.Join(s.dir, indexFile))
	if err == nil {
		var idx index
		if jsonErr := json.Unmarshal(data, &idx); jsonErr == nil {
			if idx.Schema != SchemaVersion {
				return s.invalidateAll()
			}
			s.clock = idx.Clock
			for name, e := range idx.Entries {
				if e != nil {
					s.entries[name] = e
					s.bytes += e.Size
				}
			}
			s.refreshGauges()
			return nil
		}
		// Corrupt index: rebuild from the blobs.
	}
	return s.scanBlobs()
}

// scanBlobs rebuilds the index from the blob directory: every valid blob
// is adopted (recency unknown, so deterministic name order seeds the LRU
// clock); invalid blobs are dropped.
func (s *Store) scanBlobs() error {
	names, err := os.ReadDir(filepath.Join(s.dir, blobDir))
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	sorted := make([]string, 0, len(names))
	for _, de := range names {
		if !de.IsDir() {
			sorted = append(sorted, de.Name())
		}
	}
	sort.Strings(sorted)
	for _, name := range sorted {
		payload, ok := s.readBlob(name)
		if !ok {
			continue
		}
		s.clock++
		s.entries[name] = &entry{Size: int64(len(payload)), LastUse: s.clock}
		s.bytes += int64(len(payload))
	}
	s.refreshGauges()
	return s.writeIndex()
}

// invalidateAll removes every blob — the schema changed, so every cached
// result describes a simulator that no longer exists.
func (s *Store) invalidateAll() error {
	names, err := os.ReadDir(filepath.Join(s.dir, blobDir))
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	for _, de := range names {
		os.Remove(filepath.Join(s.dir, blobDir, de.Name()))
	}
	s.entries = map[string]*entry{}
	s.bytes, s.clock = 0, 0
	s.refreshGauges()
	return s.writeIndex()
}

// blobName maps an arbitrary cache key string to its content address:
// the SHA-256 of (SchemaVersion, key). Canonical keys produced by KeyOf
// are already hashes; hashing again is cheap and makes every key — ad hoc
// or canonical — uniform, fixed-length, and filesystem-safe.
func blobName(key string) string {
	h := sha256.New()
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], SchemaVersion)
	h.Write(v[:])
	h.Write([]byte(key))
	var k Key
	h.Sum(k[:0])
	return k.Hex()
}

// Get returns the payload stored under key, or (nil, false) on a miss. A
// blob that fails validation (truncated write that somehow bypassed the
// atomic rename, bit rot, schema drift) is deleted and reported as a
// miss.
func (s *Store) Get(key string) ([]byte, bool) {
	name := blobName(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[name]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	payload, valid := s.readBlob(name)
	if !valid {
		s.dropLocked(name, e)
		s.stats.Misses++
		s.refreshGauges()
		return nil, false
	}
	s.clock++
	e.LastUse = s.clock
	s.stats.Hits++
	return payload, true
}

// Put stores payload under key, atomically, evicting LRU entries if the
// size bound is exceeded. Errors are deliberately swallowed after
// counting: a cache that cannot write degrades to a smaller cache, not a
// failed experiment.
func (s *Store) Put(key string, payload []byte) {
	name := blobName(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writeBlob(name, payload); err != nil {
		return
	}
	if old, ok := s.entries[name]; ok {
		s.bytes -= old.Size
	}
	s.clock++
	s.entries[name] = &entry{Size: int64(len(payload)), LastUse: s.clock}
	s.bytes += int64(len(payload))
	s.stats.Puts++
	s.evictLocked(name)
	s.refreshGauges()
	s.writeIndex()
}

// evictLocked removes least-recently-used entries until the store fits
// its bound. The entry just inserted (keep) survives even if it alone
// exceeds the bound: evicting the working set to fit an oversized result
// would thrash.
func (s *Store) evictLocked(keep string) {
	if s.maxBytes <= 0 {
		return
	}
	for s.bytes > s.maxBytes && len(s.entries) > 1 {
		oldest, oldestUse := "", uint64(0)
		for name, e := range s.entries {
			if name == keep {
				continue
			}
			if oldest == "" || e.LastUse < oldestUse {
				oldest, oldestUse = name, e.LastUse
			}
		}
		if oldest == "" {
			return
		}
		s.dropLocked(oldest, s.entries[oldest])
		s.stats.Evictions++
	}
}

func (s *Store) dropLocked(name string, e *entry) {
	os.Remove(filepath.Join(s.dir, blobDir, name))
	delete(s.entries, name)
	s.bytes -= e.Size
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Store) refreshGauges() {
	s.stats.Entries = len(s.entries)
	s.stats.Bytes = s.bytes
}

// Close flushes the index (recency updates from Gets are only persisted
// here and on Puts). The store must not be used after Close.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writeIndex()
}

// writeIndex atomically persists the index. Callers hold s.mu.
func (s *Store) writeIndex() error {
	idx := index{Schema: SchemaVersion, Clock: s.clock, Entries: s.entries}
	data, err := json.Marshal(idx)
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	return atomicWrite(filepath.Join(s.dir, indexFile), data)
}

// writeBlob atomically writes header+payload. Callers hold s.mu.
func (s *Store) writeBlob(name string, payload []byte) error {
	buf := make([]byte, blobHeaderSize+len(payload))
	copy(buf, blobMagic)
	binary.LittleEndian.PutUint32(buf[4:], SchemaVersion)
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(buf[16:], sum[:])
	copy(buf[blobHeaderSize:], payload)
	return atomicWrite(filepath.Join(s.dir, blobDir, name), buf)
}

// readBlob reads and validates one blob, returning (payload, ok).
// Callers hold s.mu (validation failures bump CorruptDropped and remove
// the file).
func (s *Store) readBlob(name string) ([]byte, bool) {
	path := filepath.Join(s.dir, blobDir, name)
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	if len(buf) < blobHeaderSize || string(buf[:4]) != blobMagic {
		s.corruptLocked(path)
		return nil, false
	}
	if binary.LittleEndian.Uint32(buf[4:]) != SchemaVersion {
		s.corruptLocked(path)
		return nil, false
	}
	n := binary.LittleEndian.Uint64(buf[8:])
	payload := buf[blobHeaderSize:]
	if uint64(len(payload)) != n {
		s.corruptLocked(path)
		return nil, false
	}
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(buf[16:16+sha256.Size]) {
		s.corruptLocked(path)
		return nil, false
	}
	return payload, true
}

func (s *Store) corruptLocked(path string) {
	s.stats.CorruptDropped++
	os.Remove(path)
}

// atomicWrite writes data to path via a temp file + rename, so readers
// never observe a partial file.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
