package resultcache

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openT(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 0)
	if _, ok := s.Get("k1"); ok {
		t.Fatal("hit on empty store")
	}
	s.Put("k1", []byte("payload-1"))
	got, ok := s.Get("k1")
	if !ok || string(got) != "payload-1" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	// Overwrite replaces, does not duplicate.
	s.Put("k1", []byte("payload-2"))
	got, _ = s.Get("k1")
	if string(got) != "payload-2" {
		t.Fatalf("after overwrite Get = %q", got)
	}
	st := s.Stats()
	if st.Entries != 1 || st.Hits != 2 || st.Misses != 1 || st.Puts != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh process (new Store over the same dir) serves the result.
	s2 := openT(t, dir, 0)
	got, ok = s2.Get("k1")
	if !ok || string(got) != "payload-2" {
		t.Fatalf("after reopen Get = %q, %v", got, ok)
	}
}

func TestStoreSurvivesMissingIndex(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 0)
	s.Put("a", []byte("A"))
	s.Put("b", []byte("B"))
	s.Close()
	if err := os.Remove(filepath.Join(dir, indexFile)); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, 0)
	for key, want := range map[string]string{"a": "A", "b": "B"} {
		got, ok := s2.Get(key)
		if !ok || string(got) != want {
			t.Fatalf("after index loss Get(%q) = %q, %v", key, got, ok)
		}
	}
}

// blobPaths returns the on-disk blob files.
func blobPaths(t *testing.T, dir string) []string {
	t.Helper()
	des, err := os.ReadDir(filepath.Join(dir, blobDir))
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, de := range des {
		out = append(out, filepath.Join(dir, blobDir, de.Name()))
	}
	return out
}

func TestStoreCorruptionRecovery(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)-3] },
		"bit-flip":  func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b },
		"bad-magic": func(b []byte) []byte { b[0] = 'X'; return b },
		"schema-drift": func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:], SchemaVersion+1)
			return b
		},
		"header-only": func(b []byte) []byte { return b[:blobHeaderSize-8] },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s := openT(t, dir, 0)
			s.Put("k", []byte("precious"))
			paths := blobPaths(t, dir)
			if len(paths) != 1 {
				t.Fatalf("%d blobs, want 1", len(paths))
			}
			raw, err := os.ReadFile(paths[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(paths[0], corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get("k"); ok {
				t.Fatalf("corrupted blob served as a hit: %q", got)
			}
			st := s.Stats()
			if st.CorruptDropped != 1 {
				t.Fatalf("CorruptDropped = %d, want 1", st.CorruptDropped)
			}
			if remaining := blobPaths(t, dir); len(remaining) != 0 {
				t.Fatalf("corrupt blob not removed: %v", remaining)
			}
			// The store heals: a re-Put works and is served again.
			s.Put("k", []byte("recomputed"))
			if got, ok := s.Get("k"); !ok || string(got) != "recomputed" {
				t.Fatalf("after heal Get = %q, %v", got, ok)
			}
		})
	}
}

func TestStoreSchemaInvalidation(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 0)
	s.Put("k", []byte("old-schema"))
	s.Close()
	// Rewrite the index claiming an older schema.
	idx, err := os.ReadFile(filepath.Join(dir, indexFile))
	if err != nil {
		t.Fatal(err)
	}
	mutated := bytes.Replace(idx,
		[]byte(fmt.Sprintf(`"schema":%d`, SchemaVersion)),
		[]byte(`"schema":0`), 1)
	if bytes.Equal(mutated, idx) {
		t.Fatal("test could not mutate the schema field")
	}
	if err := os.WriteFile(filepath.Join(dir, indexFile), mutated, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, 0)
	if _, ok := s2.Get("k"); ok {
		t.Fatal("stale-schema entry served as a hit")
	}
	if n := len(blobPaths(t, dir)); n != 0 {
		t.Fatalf("%d blobs survived schema invalidation", n)
	}
}

func TestStoreEvictionOrder(t *testing.T) {
	dir := t.TempDir()
	// Each payload is 8 bytes; bound at 3 entries' worth.
	s := openT(t, dir, 24)
	pay := func(i int) []byte { return []byte(fmt.Sprintf("payld-%02d", i)) }
	s.Put("a", pay(0))
	s.Put("b", pay(1))
	s.Put("c", pay(2))
	// Touch a: it becomes most-recently-used, so the next insert must
	// evict b (the least recently used), not a.
	if _, ok := s.Get("a"); !ok {
		t.Fatal("miss on a")
	}
	s.Put("d", pay(3))
	if _, ok := s.Get("b"); ok {
		t.Fatal("b survived eviction; LRU order wrong")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("%s was evicted; LRU order wrong", k)
		}
	}
	if ev := s.Stats().Evictions; ev != 1 {
		t.Fatalf("Evictions = %d, want 1", ev)
	}
	// An oversized single entry is admitted (never evicts itself).
	s.Put("huge", make([]byte, 100))
	if _, ok := s.Get("huge"); !ok {
		t.Fatal("oversized entry not admitted")
	}
}

func TestStoreConcurrent(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", i%10)
				if v, ok := s.Get(key); ok {
					// Every reader of key i%10 must observe a value some
					// writer stored under it.
					if len(v) == 0 || v[0] != 'v' {
						t.Errorf("garbled read %q", v)
						return
					}
				}
				s.Put(key, []byte(fmt.Sprintf("v-%d-%d", w, i)))
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, 0)
	if s2.Stats().Entries != 10 {
		t.Fatalf("Entries = %d, want 10", s2.Stats().Entries)
	}
}
