// Package resultcache is the persistent, content-addressed result cache
// behind the experiment harness: deterministic simulation makes a trial's
// result a pure function of its configuration, so a canonical hash of
// (workload spec, simulation config, seed, schema version) addresses the
// result forever — across processes, machines, and struct refactors.
//
// The package has two halves. The canonical encoder (this file) turns an
// arbitrary configuration value into a stable byte serialization and a
// SHA-256 key: struct fields are emitted as sorted (name, value) pairs,
// so reordering fields in a Go source file cannot change a key, while
// renaming, adding, or removing a field — a semantic change — always
// does. The Store (store.go) persists encoded results on disk under those
// keys with atomic writes, corruption detection, schema-version
// invalidation, and size-bounded LRU eviction.
package resultcache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strconv"
)

// SchemaVersion tags every canonical key and every stored blob. Bump it
// when simulator semantics change in a way that invalidates previously
// cached results (cost-model recalibration, dispatch-order changes, new
// factors defaulting to non-neutral values): old entries then miss by
// construction instead of serving stale physics.
const SchemaVersion = 1

// Key is a canonical trial key: the SHA-256 of a canonical serialization.
type Key [sha256.Size]byte

// Hex returns the key's lowercase hex form — the on-disk blob name and
// the runner-level memo string.
func (k Key) Hex() string { return hex.EncodeToString(k[:]) }

// KeyOf canonically serializes (SchemaVersion, kind, parts...) and hashes
// it. kind namespaces key families ("cell", "ext1pair", ...) so two
// different trial shapes can never collide even if their configs encode
// identically.
func KeyOf(kind string, parts ...any) Key {
	h := sha256.New()
	b := make([]byte, 0, 256)
	b = appendCanonical(b, reflect.ValueOf(SchemaVersion))
	b = append(b, canonSep)
	b = append(b, kind...)
	for _, p := range parts {
		b = append(b, canonSep)
		b = AppendCanonical(b, p)
	}
	h.Write(b)
	var k Key
	h.Sum(k[:0])
	return k
}

// Canonical returns the canonical serialization of v (without the schema
// prefix KeyOf adds). Exposed for golden tests and debugging.
func Canonical(v any) []byte { return AppendCanonical(nil, v) }

// AppendCanonical appends v's canonical serialization to b.
//
// The encoding is deterministic and unambiguous by construction:
//
//   - structs emit "{name=value;...}" with fields sorted by name, so the
//     declaration order of fields never matters; unexported fields are
//     skipped (they are invisible configuration by definition).
//   - pointers and interfaces emit "nil" or dereference; a nil pointer
//     and a zero-valued pointee are therefore distinct.
//   - floats emit their exact IEEE-754 bits, so two configs differing by
//     one ULP hash differently and -0.0 differs from +0.0.
//   - slices/arrays emit "[v,v,...]"; strings are length-prefixed so a
//     crafted string cannot impersonate structural delimiters.
//   - maps emit entries sorted by canonical key encoding (no map in the
//     current config surface, but the encoder must not panic on one).
func AppendCanonical(b []byte, v any) []byte {
	if v == nil {
		return append(b, "nil"...)
	}
	return appendCanonical(b, reflect.ValueOf(v))
}

const canonSep = 0x1f // ASCII unit separator: never appears in Go idents

func appendCanonical(b []byte, rv reflect.Value) []byte {
	switch rv.Kind() {
	case reflect.Bool:
		if rv.Bool() {
			return append(b, "true"...)
		}
		return append(b, "false"...)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return strconv.AppendInt(b, rv.Int(), 10)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return strconv.AppendUint(b, rv.Uint(), 10)
	case reflect.Float32, reflect.Float64:
		// Exact bits, not a decimal rendering: no formatting round-trip
		// can alias two distinct values onto one key.
		b = append(b, 'f')
		return strconv.AppendUint(b, math.Float64bits(rv.Float()), 16)
	case reflect.Complex64, reflect.Complex128:
		c := rv.Complex()
		b = append(b, 'c')
		b = strconv.AppendUint(b, math.Float64bits(real(c)), 16)
		b = append(b, ',')
		return strconv.AppendUint(b, math.Float64bits(imag(c)), 16)
	case reflect.String:
		s := rv.String()
		b = strconv.AppendInt(b, int64(len(s)), 10)
		b = append(b, 's')
		return append(b, s...)
	case reflect.Pointer, reflect.Interface:
		if rv.IsNil() {
			return append(b, "nil"...)
		}
		b = append(b, '&')
		return appendCanonical(b, rv.Elem())
	case reflect.Slice:
		if rv.IsNil() {
			return append(b, "nil"...)
		}
		fallthrough
	case reflect.Array:
		b = append(b, '[')
		for i := 0; i < rv.Len(); i++ {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendCanonical(b, rv.Index(i))
		}
		return append(b, ']')
	case reflect.Struct:
		t := rv.Type()
		type field struct {
			name string
			i    int
		}
		fields := make([]field, 0, t.NumField())
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			fields = append(fields, field{f.Name, i})
		}
		if len(fields) == 0 && t.NumField() > 0 {
			// A struct whose configuration lives entirely in unexported
			// fields would encode as "{}" — every instance aliasing one
			// key. Refuse rather than silently collide.
			panic(fmt.Sprintf("resultcache: %s has no exported fields; its canonical encoding would be empty", t))
		}
		sort.Slice(fields, func(i, j int) bool { return fields[i].name < fields[j].name })
		b = append(b, '{')
		for i, f := range fields {
			if i > 0 {
				b = append(b, ';')
			}
			b = append(b, f.name...)
			b = append(b, '=')
			b = appendCanonical(b, rv.Field(f.i))
		}
		return append(b, '}')
	case reflect.Map:
		if rv.IsNil() {
			return append(b, "nil"...)
		}
		type entry struct{ k, v []byte }
		entries := make([]entry, 0, rv.Len())
		iter := rv.MapRange()
		for iter.Next() {
			entries = append(entries, entry{
				k: appendCanonical(nil, iter.Key()),
				v: appendCanonical(nil, iter.Value()),
			})
		}
		sort.Slice(entries, func(i, j int) bool { return string(entries[i].k) < string(entries[j].k) })
		b = append(b, 'm', '{')
		for i, e := range entries {
			if i > 0 {
				b = append(b, ';')
			}
			b = append(b, e.k...)
			b = append(b, '=')
			b = append(b, e.v...)
		}
		return append(b, '}')
	default:
		// Channels, funcs, unsafe pointers: not configuration. Refusing
		// loudly beats hashing an address that differs per process.
		panic(fmt.Sprintf("resultcache: cannot canonicalize %s", rv.Kind()))
	}
}
