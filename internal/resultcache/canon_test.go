package resultcache

import (
	"math"
	"strings"
	"testing"
)

// orderedA and reorderedA declare the same fields in different source
// order: their canonical encodings must be identical, because a pure
// refactor of field order must not invalidate a persistent cache.
type orderedA struct {
	Alpha int
	Beta  string
	Gamma float64
}

type reorderedA struct {
	Gamma float64
	Alpha int
	Beta  string
}

func TestCanonicalIgnoresFieldOrder(t *testing.T) {
	a := orderedA{Alpha: 7, Beta: "x", Gamma: 2.5}
	b := reorderedA{Alpha: 7, Beta: "x", Gamma: 2.5}
	ca, cb := string(Canonical(a)), string(Canonical(b))
	if ca != cb {
		t.Fatalf("field reordering changed the canonical encoding:\n a=%q\n b=%q", ca, cb)
	}
}

func TestCanonicalDistinguishes(t *testing.T) {
	base := orderedA{Alpha: 7, Beta: "x", Gamma: 2.5}
	variants := []orderedA{
		{Alpha: 8, Beta: "x", Gamma: 2.5},
		{Alpha: 7, Beta: "y", Gamma: 2.5},
		{Alpha: 7, Beta: "x", Gamma: 2.5000000000000004}, // one ULP off
		{Alpha: 7, Beta: "x", Gamma: math.Copysign(0, -1)},
	}
	cb := string(Canonical(base))
	for i, v := range variants {
		if string(Canonical(v)) == cb {
			t.Errorf("variant %d encodes identically to base", i)
		}
	}
	// Negative zero and positive zero are distinct IEEE values and must
	// hash differently (the simulator could in principle branch on sign).
	if string(Canonical(0.0)) == string(Canonical(math.Copysign(0, -1))) {
		t.Error("+0.0 and -0.0 encode identically")
	}
	// Nil pointer vs zero value.
	var pz *orderedA
	zero := &orderedA{}
	if string(Canonical(pz)) == string(Canonical(zero)) {
		t.Error("nil pointer and zero pointee encode identically")
	}
}

func TestCanonicalStringsCannotImpersonateStructure(t *testing.T) {
	// A string containing structural delimiters must not collide with a
	// genuinely structured value: length prefixes prevent it.
	type s1 struct{ A, B string }
	x := s1{A: "p=1;B", B: "2"}
	y := s1{A: "p=1", B: "B=2"}
	if string(Canonical(x)) == string(Canonical(y)) {
		t.Fatal("delimiter injection collided two distinct values")
	}
}

func TestCanonicalRefusesUnexportedOnlyStructs(t *testing.T) {
	type hidden struct{ a, b int }
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for struct with only unexported fields")
		}
	}()
	Canonical(hidden{a: 1, b: 2})
}

// TestKeyGolden pins exact key digests. These hex strings are the
// persistent cache's address space: if this test breaks, previously
// cached results silently stop resolving (or worse, wrongly resolve), so
// any intentional change here must come with a SchemaVersion bump.
func TestKeyGolden(t *testing.T) {
	type spec struct {
		Grid    int64
		Rate    float64
		Tag     string
		Weights []float64
	}
	cases := []struct {
		name string
		key  Key
		want string
	}{
		{
			name: "empty",
			key:  KeyOf("probe"),
			want: "d102d767d0b18afe970ce1e88674143908af7f8e75cb35410afeb4d87b19fcb7",
		},
		{
			name: "spec",
			key: KeyOf("cell", spec{
				Grid: 256, Rate: 1.5, Tag: "kmeans", Weights: []float64{1, 2},
			}),
			want: "436fb76206b687556545367a065465d3013d735d70247516437517acab1b5a62",
		},
		{
			name: "nil-part",
			key:  KeyOf("cell", nil),
			want: "ec341aa99cd67e5eab3479f6f4d82a3a2a32489e6811ac825ce487327ee3049f",
		},
	}
	for _, c := range cases {
		if got := c.key.Hex(); got != c.want {
			t.Errorf("%s: key = %s, want %s (canonical keys changed: bump SchemaVersion)", c.name, got, c.want)
		}
	}
}

func TestKeyKindNamespaces(t *testing.T) {
	if KeyOf("a", 1) == KeyOf("b", 1) {
		t.Fatal("kind does not namespace keys")
	}
	if KeyOf("a", 1, 2) == KeyOf("a", 12) {
		t.Fatal("part boundaries are ambiguous")
	}
}

func TestCanonicalMapDeterministic(t *testing.T) {
	m := map[string]int{"a": 1, "b": 2, "c": 3, "d": 4, "e": 5}
	first := string(Canonical(m))
	for i := 0; i < 20; i++ {
		if got := string(Canonical(m)); got != first {
			t.Fatalf("map encoding unstable: %q vs %q", got, first)
		}
	}
	if !strings.HasPrefix(first, "m{") {
		t.Fatalf("unexpected map encoding %q", first)
	}
}
